//! Seed-driven generation of random well-formed fuzz cases.
//!
//! A [`FuzzCase`] is everything one run needs: protocol, topology, deployment
//! options and an event schedule. [`ScheduleGenerator::case`] derives all of it
//! deterministically from a single `u64` seed (same seed ⇒ byte-identical case ⇒
//! identical run), which is what makes failing seeds reproducible from nothing
//! but the seed number printed in a CI log.
//!
//! Generated schedules are *well-formed by construction*: per-cluster fault
//! budgets stay within `f = (n-1)/3`, every partition is healed, restarts only
//! follow crashes with a margin, and all events land in a window that leaves the
//! run time to quiesce — so a checker violation on a generated case is a protocol
//! bug, not a schedule that asked for the impossible.

use ava_scenario::{
    BrokerTier, ByzantineBehavior, Protocol, Scenario, ScenarioBuilder, ScenarioEvent, Schedule,
};
use ava_simnet::LatencyModel;
use ava_store::StoreConfig;
use ava_types::{ClusterId, Duration, Region, ReplicaId, SystemConfig, Time};
use ava_workload::{AggregateLoad, WorkloadSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;

/// Knobs bounding what [`ScheduleGenerator`] draws.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Virtual run length of every generated case.
    pub run: Duration,
    /// Tail window with no scheduled events, so injected faults have time to
    /// play out (recoveries complete, partitions drain) before the run ends.
    pub grace: Duration,
    /// Maximum number of events drawn per schedule (the draw may produce fewer:
    /// attempts that would break a well-formedness constraint are skipped).
    pub max_events: usize,
    /// Protocols drawn from (uniformly).
    pub protocols: Vec<Protocol>,
    /// Clusters per deployment (inclusive bounds).
    pub clusters: (usize, usize),
    /// Replicas per cluster (inclusive bounds).
    pub cluster_size: (usize, usize),
    /// Outstanding requests per client.
    pub client_concurrency: usize,
    /// Probability that a case deploys a broker tier (aggregate virtual-client
    /// load routed through per-cluster brokers). Drawn from an RNG derived
    /// *separately* from the schedule RNG, so turning this on never shifts the
    /// schedule/topology a seed generates. `0.0` in the quick profile — the
    /// fuzz determinism goldens pin quick-profile cases byte-for-byte.
    pub broker_probability: f64,
    /// Probability that a case corrupts replicas with Byzantine behaviors
    /// (`ScenarioEvent::Corrupt`). Like the broker knob, drawn from its own
    /// salted RNG stream so enabling it never shifts the schedule/topology a
    /// seed generates; the corrupt draws *do* share the per-cluster fault
    /// budget with crashes/mutes/leaves, so total faulty replicas stay ≤ f
    /// per cluster. `0.0` in the quick profile (golden-pinned).
    pub byzantine_probability: f64,
}

impl FuzzConfig {
    /// The CI smoke profile: short runs, small topologies — a seed takes well
    /// under a second, so hundreds fit in a smoke budget.
    pub fn quick() -> Self {
        FuzzConfig {
            run: Duration::from_secs(12),
            grace: Duration::from_secs(4),
            max_events: 6,
            protocols: Protocol::ALL.to_vec(),
            clusters: (2, 2),
            cluster_size: (4, 5),
            client_concurrency: 32,
            broker_probability: 0.0,
            byzantine_probability: 0.0,
        }
    }

    /// The overnight profile: longer runs, bigger topologies, more events.
    pub fn full() -> Self {
        FuzzConfig {
            run: Duration::from_secs(20),
            grace: Duration::from_secs(5),
            max_events: 10,
            protocols: Protocol::ALL.to_vec(),
            clusters: (2, 3),
            cluster_size: (4, 7),
            client_concurrency: 128,
            broker_probability: 0.35,
            byzantine_probability: 0.25,
        }
    }
}

/// One fully described fuzz run, derived deterministically from a seed.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The generator seed this case was derived from.
    pub seed: u64,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Cluster recipe, as `(size, region)` per cluster (kept alongside the
    /// expanded config so reproducer snippets can restate the constructor call).
    pub clusters: Vec<(usize, Region)>,
    /// The expanded system configuration.
    pub config: SystemConfig,
    /// Deployment options (simulation seed, workload, store cadence, …).
    pub opts: ava_hamava::harness::DeploymentOptions,
    /// The event schedule.
    pub schedule: Schedule,
    /// Broker tier, when the case routes aggregate virtual-client load through
    /// brokers (always with batch retries disabled — see the conservation
    /// checker's exactly-once argument).
    pub brokers: Option<BrokerTier>,
    /// Virtual run length.
    pub run: Duration,
}

impl FuzzCase {
    /// The scenario this case describes.
    ///
    /// # Panics
    /// Panics if the schedule is invalid — generated schedules never are (the
    /// scenario-api property test pins this); shrunk candidates go through
    /// [`FuzzCase::try_scenario`] instead.
    pub fn scenario(&self) -> Scenario {
        self.try_scenario().expect("generated schedules are well-formed")
    }

    /// The scenario this case describes, or the build-time validation failure.
    pub fn try_scenario(&self) -> Result<Scenario, String> {
        self.builder().try_build()
    }

    fn builder(&self) -> ScenarioBuilder {
        let mut builder = Scenario::builder(self.protocol, self.config.clone())
            .options(self.opts.clone())
            .events(&self.schedule)
            .run_for(self.run);
        if let Some(tier) = &self.brokers {
            builder = builder.brokers(tier.clone());
        }
        builder
    }

    /// A copy of this case with `schedule` swapped in (the shrinker's candidate
    /// constructor).
    pub fn with_schedule(&self, schedule: Schedule) -> FuzzCase {
        FuzzCase { schedule, ..self.clone() }
    }

    /// Canonical byte encoding of the whole case (topology, options, sorted
    /// schedule). Two cases encode identically iff they describe the same run,
    /// so `sha256(encode())` is the schedule fingerprint the determinism goldens
    /// and failure reports use.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"ava-fuzz-case-v1");
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(self.protocol.label().as_bytes());
        out.push(self.clusters.len() as u8);
        for (size, region) in &self.clusters {
            out.extend_from_slice(&(*size as u64).to_le_bytes());
            out.push(region.index() as u8);
        }
        let p = &self.config.params;
        out.extend_from_slice(&(p.batch_size as u64).to_le_bytes());
        out.push(p.alpha_percent);
        for d in [p.remote_leader_timeout, p.brd_timeout, p.local_timeout, p.leader_change_grace] {
            out.extend_from_slice(&d.as_micros().to_le_bytes());
        }
        out.extend_from_slice(&p.op_size.to_le_bytes());
        out.push(p.parallel_reconfig_workflow as u8);
        out.extend_from_slice(&self.opts.seed.to_le_bytes());
        out.extend_from_slice(&(self.opts.clients_per_cluster as u64).to_le_bytes());
        out.extend_from_slice(&(self.opts.client_concurrency as u64).to_le_bytes());
        out.extend_from_slice(&self.opts.store.map_or(0, |s| s.checkpoint_interval).to_le_bytes());
        encode_workload(&mut out, &self.opts.workload);
        encode_latency(&mut out, &self.opts.latency);
        // Broker bytes are appended only when a tier is present, so broker-free
        // cases (the entire quick profile) encode exactly as they did before
        // the broker tier existed — the fuzz determinism goldens stay valid.
        if let Some(tier) = &self.brokers {
            out.extend_from_slice(b"brokers");
            out.extend_from_slice(&(tier.brokers_per_cluster as u64).to_le_bytes());
            out.extend_from_slice(&(tier.max_batch_ops as u64).to_le_bytes());
            out.extend_from_slice(&tier.flush_interval.as_micros().to_le_bytes());
            out.extend_from_slice(&(tier.max_inflight as u64).to_le_bytes());
            out.extend_from_slice(&(tier.queue_cap as u64).to_le_bytes());
            out.extend_from_slice(&tier.retry_timeout.as_micros().to_le_bytes());
            out.extend_from_slice(&tier.load.virtual_clients.to_le_bytes());
            out.extend_from_slice(&tier.load.offered_tps.to_le_bytes());
            out.extend_from_slice(&tier.load.issue_for.as_micros().to_le_bytes());
            out.extend_from_slice(&tier.load.client_theta.to_bits().to_le_bytes());
            encode_workload(&mut out, &tier.load.workload);
        }
        out.extend_from_slice(&self.run.as_micros().to_le_bytes());
        let sorted = self.schedule.sorted();
        out.extend_from_slice(&(sorted.len() as u64).to_le_bytes());
        for (at, event) in sorted {
            out.extend_from_slice(&at.as_micros().to_le_bytes());
            encode_event(&mut out, &event);
        }
        out
    }

    /// Hex SHA-256 of [`FuzzCase::encode`] — the schedule fingerprint.
    pub fn fingerprint(&self) -> String {
        let digest = ava_crypto::sha256(&self.encode());
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Render the case as a compilable `ScenarioBuilder` snippet — the minimal
    /// reproducer printed when a shrunk failing case is reported.
    pub fn builder_snippet(&self) -> String {
        let mut s = String::new();
        let clusters = self
            .clusters
            .iter()
            .map(|(size, region)| format!("({size}, Region::{region:?})"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "// fuzz seed {seed} ({proto})\n\
             let mut config = SystemConfig::homogeneous_regions(&[{clusters}]);\n",
            seed = self.seed,
            proto = self.protocol.label(),
        ));
        let p = &self.config.params;
        s.push_str(&format!("config.params.batch_size = {};\n", p.batch_size));
        for (field, value) in [
            ("remote_leader_timeout", p.remote_leader_timeout),
            ("brd_timeout", p.brd_timeout),
            ("local_timeout", p.local_timeout),
        ] {
            s.push_str(&format!(
                "config.params.{field} = Duration::from_micros({});\n",
                value.as_micros()
            ));
        }
        s.push_str(&format!(
            "let scenario = Scenario::builder(Protocol::{:?}, config)\n    .seed({})\n",
            self.protocol, self.opts.seed
        ));
        s.push_str(&format!("    .workload({})\n", workload_expr(&self.opts.workload)));
        if let Some(store) = self.opts.store {
            s.push_str(&format!("    .store(StoreConfig::every({}))\n", store.checkpoint_interval));
        }
        if let Some(tier) = &self.brokers {
            s.push_str(&format!(
                "    .brokers(BrokerTier {{ brokers_per_cluster: {}, max_batch_ops: {}, \
                 max_inflight: {}, queue_cap: {}, retry_timeout: Duration::from_micros({}), \
                 load: AggregateLoad {{ virtual_clients: {}, offered_tps: {}, \
                 issue_for: Duration::from_micros({}), ..AggregateLoad::default() }}, \
                 ..BrokerTier::default() }})\n",
                tier.brokers_per_cluster,
                tier.max_batch_ops,
                tier.max_inflight,
                tier.queue_cap,
                tier.retry_timeout.as_micros(),
                tier.load.virtual_clients,
                tier.load.offered_tps,
                tier.load.issue_for.as_micros(),
            ));
        }
        s.push_str(&format!("    .run_for(Duration::from_micros({}))\n", self.run.as_micros()));
        for (at, event) in self.schedule.sorted() {
            s.push_str(&format!("    {}\n", event_call(at, &event)));
        }
        s.push_str("    .build();\n");
        s
    }
}

fn encode_workload(out: &mut Vec<u8>, w: &WorkloadSpec) {
    out.extend_from_slice(&w.read_ratio.to_bits().to_le_bytes());
    out.extend_from_slice(&w.key_space.to_le_bytes());
    out.extend_from_slice(&w.zipf_theta.to_bits().to_le_bytes());
    out.extend_from_slice(&w.payload_size.to_le_bytes());
}

fn encode_latency(out: &mut Vec<u8>, latency: &LatencyModel) {
    for a in Region::ALL {
        for b in Region::ALL {
            out.extend_from_slice(&latency.rtt_ms(a, b).to_bits().to_le_bytes());
        }
    }
}

fn encode_event(out: &mut Vec<u8>, event: &ScenarioEvent) {
    out.extend_from_slice(event.kind().as_bytes());
    match event {
        ScenarioEvent::Crash { replica }
        | ScenarioEvent::Restart { replica }
        | ScenarioEvent::MuteInterCluster { replica }
        | ScenarioEvent::SilenceLocalLeader { replica }
        | ScenarioEvent::Leave { replica } => out.extend_from_slice(&replica.0.to_le_bytes()),
        ScenarioEvent::Join { cluster, region } => {
            out.extend_from_slice(&cluster.0.to_le_bytes());
            out.push(region.index() as u8);
        }
        ScenarioEvent::ClientJoin { cluster, workload }
        | ScenarioEvent::WorkloadSwitch { cluster, workload } => {
            out.extend_from_slice(&cluster.0.to_le_bytes());
            encode_workload(out, workload);
        }
        ScenarioEvent::Partition { a, b } | ScenarioEvent::Heal { a, b } => {
            out.extend_from_slice(&a.0.to_le_bytes());
            out.extend_from_slice(&b.0.to_le_bytes());
        }
        ScenarioEvent::LatencyShift { latency } => encode_latency(out, latency),
        ScenarioEvent::Corrupt { replica, behavior } => {
            out.extend_from_slice(&replica.0.to_le_bytes());
            out.extend_from_slice(&behavior.to_tag().to_le_bytes());
        }
    }
}

fn workload_expr(w: &WorkloadSpec) -> String {
    format!(
        "WorkloadSpec {{ read_ratio: {:?}, key_space: {}, zipf_theta: {:?}, payload_size: {} }}",
        w.read_ratio, w.key_space, w.zipf_theta, w.payload_size
    )
}

fn event_call(at: Time, event: &ScenarioEvent) -> String {
    let us = at.as_micros();
    // Generated times sit on the millisecond grid; fall back to the exact tuple
    // constructor for anything that does not.
    let t = if us % 1_000 == 0 {
        format!("Time::from_millis({})", us / 1_000)
    } else {
        format!("Time({us})")
    };
    match event {
        ScenarioEvent::Crash { replica } => format!(".crash_at({t}, ReplicaId({}))", replica.0),
        ScenarioEvent::Restart { replica } => {
            format!(".restart_at({t}, ReplicaId({}))", replica.0)
        }
        ScenarioEvent::MuteInterCluster { replica } => {
            format!(".mute_inter_cluster_at({t}, ReplicaId({}))", replica.0)
        }
        ScenarioEvent::SilenceLocalLeader { replica } => format!(
            ".at({t}, ScenarioEvent::SilenceLocalLeader {{ replica: ReplicaId({}) }})",
            replica.0
        ),
        ScenarioEvent::Join { cluster, region } => {
            format!(".join_at({t}, ClusterId({}), Region::{region:?})", cluster.0)
        }
        ScenarioEvent::Leave { replica } => format!(".leave_at({t}, ReplicaId({}))", replica.0),
        ScenarioEvent::ClientJoin { cluster, workload } => format!(
            ".at({t}, ScenarioEvent::ClientJoin {{ cluster: ClusterId({}), workload: {} }})",
            cluster.0,
            workload_expr(workload)
        ),
        ScenarioEvent::WorkloadSwitch { cluster, workload } => format!(
            ".at({t}, ScenarioEvent::WorkloadSwitch {{ cluster: ClusterId({}), workload: {} }})",
            cluster.0,
            workload_expr(workload)
        ),
        ScenarioEvent::Partition { a, b } => {
            format!(".partition_at({t}, ClusterId({}), ClusterId({}))", a.0, b.0)
        }
        ScenarioEvent::Heal { a, b } => {
            format!(".heal_at({t}, ClusterId({}), ClusterId({}))", a.0, b.0)
        }
        ScenarioEvent::LatencyShift { latency } => format!(
            ".latency_shift_at({t}, LatencyModel::uniform({:?}))",
            latency.rtt_ms(Region::UsWest, Region::Europe)
        ),
        ScenarioEvent::Corrupt { replica, behavior } => {
            format!(".corrupt_at({t}, ReplicaId({}), ByzantineBehavior::{behavior:?})", replica.0)
        }
    }
}

/// Deterministic generator of well-formed [`FuzzCase`]s.
pub struct ScheduleGenerator {
    cfg: FuzzConfig,
}

impl ScheduleGenerator {
    /// A generator drawing within `cfg`'s bounds.
    pub fn new(cfg: FuzzConfig) -> Self {
        ScheduleGenerator { cfg }
    }

    /// The bounds this generator draws within.
    pub fn config(&self) -> &FuzzConfig {
        &self.cfg
    }

    /// Derive the complete case for `seed`. Same seed ⇒ byte-identical case.
    pub fn case(&self, seed: u64) -> FuzzCase {
        // Salt the stream so case(0) and case(1) do not share a SplitMix64
        // prefix with the simulation seeds derived below.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5_5a5a_f0f0_0f0f);
        let cfg = &self.cfg;

        let protocol = cfg.protocols[rng.gen_range(0..cfg.protocols.len())];
        let n_clusters = rng.gen_range(cfg.clusters.0..=cfg.clusters.1);
        let clusters: Vec<(usize, Region)> = (0..n_clusters)
            .map(|_| {
                let size = rng.gen_range(cfg.cluster_size.0..=cfg.cluster_size.1);
                let region = Region::ALL[rng.gen_range(0..Region::ALL.len())];
                (size, region)
            })
            .collect();
        let mut config = SystemConfig::homogeneous_regions(&clusters);
        config.params.batch_size = 20;
        // Short fault-recovery timeouts: generated schedules crash leaders and
        // partition clusters, and the run must re-stabilize inside the window.
        config.params.remote_leader_timeout = Duration::from_secs(4);
        config.params.brd_timeout = Duration::from_secs(4);
        config.params.local_timeout = Duration::from_secs(4);

        let store = if rng.gen_bool(0.75) {
            Some(StoreConfig::every(rng.gen_range(2u64..=6)))
        } else {
            None
        };
        let read_ratio = [0.3, 0.5, 0.7, 0.9][rng.gen_range(0..4usize)];
        let opts = ava_hamava::harness::DeploymentOptions {
            seed: rng.gen_range(1u64..1_000_000_000),
            workload: WorkloadSpec { read_ratio, key_space: 500, ..WorkloadSpec::default() },
            client_concurrency: cfg.client_concurrency,
            store,
            ..Default::default()
        };

        let membership = config.membership();
        let mut budget = FaultBudget {
            used_ms: BTreeSet::new(),
            harmed: vec![0; config.clusters.len()],
            harmed_replicas: BTreeSet::new(),
        };
        let mut schedule =
            self.draw_schedule(&mut rng, protocol, &config, store.is_some(), &mut budget);
        self.draw_byzantine(seed, &config, &membership, &mut schedule, &mut budget);
        let brokers = self.draw_brokers(seed);
        FuzzCase { seed, protocol, clusters, config, opts, schedule, brokers, run: cfg.run }
    }

    /// Draw 1–2 `Corrupt` events for `seed` from a *separately derived* RNG
    /// stream (same pattern as the broker draw): turning the knob on never
    /// shifts the schedule/topology a seed generates. Unlike the broker draw
    /// the corrupt targets *do* consume the shared fault budget, so crashes,
    /// mutes, leaves and corruptions together never exceed `f` faulty replicas
    /// in any cluster — the adversary model the safety checkers assume.
    fn draw_byzantine(
        &self,
        seed: u64,
        config: &SystemConfig,
        membership: &ava_types::Membership,
        schedule: &mut Schedule,
        budget: &mut FaultBudget,
    ) {
        let cfg = &self.cfg;
        if cfg.byzantine_probability <= 0.0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6279_7a61_6e74_696e); // "byzantin"
        if !rng.gen_bool(cfg.byzantine_probability) {
            return;
        }
        let lo_ms = 1_000u64;
        let hi_ms = (cfg.run.as_micros() - cfg.grace.as_micros()) / 1_000;
        let n = rng.gen_range(1..=2usize);
        for _ in 0..n {
            let Some(at_ms) = fresh_time(&mut rng, &mut budget.used_ms, lo_ms, hi_ms) else {
                continue;
            };
            let Some((ci, replica)) = pick_harmable(
                &mut rng,
                config,
                membership,
                &budget.harmed,
                &budget.harmed_replicas,
            ) else {
                continue;
            };
            budget.harmed[ci] += 1;
            budget.harmed_replicas.insert(replica);
            let behavior = draw_behavior(&mut rng);
            schedule.add(Time::from_millis(at_ms), ScenarioEvent::Corrupt { replica, behavior });
        }
    }

    /// Draw an optional broker tier for `seed` from a *separately derived* RNG:
    /// the schedule/topology stream above must be unshifted by the broker knob,
    /// so enabling `broker_probability` reproduces the exact same faults with a
    /// broker tier layered on top.
    fn draw_brokers(&self, seed: u64) -> Option<BrokerTier> {
        let cfg = &self.cfg;
        if cfg.broker_probability <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6272_6f6b_6572_6673);
        if !rng.gen_bool(cfg.broker_probability) {
            return None;
        }
        // Issue until the grace tail starts, like the scheduled events; the
        // grace window drains the in-flight backlog. Retries stay disabled
        // (timeout past the run end): a retry to a different replica can
        // double-admit a batch, which would make the conservation checker's
        // exactly-once committed-trace reading unsound.
        let issue_for = Duration(cfg.run.as_micros() - cfg.grace.as_micros());
        Some(BrokerTier {
            brokers_per_cluster: rng.gen_range(1..=2),
            max_batch_ops: [20, 50, 100][rng.gen_range(0..3usize)],
            max_inflight: rng.gen_range(2..=4),
            queue_cap: 10_000,
            retry_timeout: Duration(cfg.run.as_micros() * 2),
            load: AggregateLoad {
                virtual_clients: 20_000,
                offered_tps: [200, 500, 1_000][rng.gen_range(0..3usize)],
                issue_for,
                ..AggregateLoad::default()
            },
            ..BrokerTier::default()
        })
    }

    /// Draw a well-formed schedule for `config`. Attempts that would violate a
    /// constraint (fault budget exhausted, no healable window left, …) are
    /// skipped, so the schedule may hold fewer events than drawn.
    fn draw_schedule(
        &self,
        rng: &mut StdRng,
        protocol: Protocol,
        config: &SystemConfig,
        has_store: bool,
        budget: &mut FaultBudget,
    ) -> Schedule {
        let cfg = &self.cfg;
        let mut schedule = Schedule::new();
        let membership = config.membership();
        let lo_ms = 1_000u64;
        let hi_ms = (cfg.run.as_micros() - cfg.grace.as_micros()) / 1_000;
        // All event times are distinct, so the canonical (time, kind, ids) order
        // is total and payload-blind ties cannot occur.
        let used_ms = &mut budget.used_ms;
        // Per-cluster count of harmed replicas ({crash, mute, silence, leave}
        // targets); kept within f = (n-1)/3 so every cluster stays live. The
        // later byzantine draw spends from the same budget.
        let harmed = &mut budget.harmed;
        let harmed_replicas = &mut budget.harmed_replicas;
        let mut partitioned: BTreeSet<(u32, u32)> = BTreeSet::new();

        let n_events = rng.gen_range(0..=cfg.max_events);
        for _ in 0..n_events {
            let Some(at_ms) = fresh_time(rng, used_ms, lo_ms, hi_ms) else {
                continue;
            };
            let at = Time::from_millis(at_ms);
            match rng.gen_range(0u32..100) {
                // Crash (optionally followed by a restart when the store is on —
                // a storeless restart would re-execute from round 0).
                0..=21 => {
                    let Some((ci, replica)) =
                        pick_harmable(rng, config, &membership, &harmed, &harmed_replicas)
                    else {
                        continue;
                    };
                    harmed[ci] += 1;
                    harmed_replicas.insert(replica);
                    schedule.add(at, ScenarioEvent::Crash { replica });
                    if has_store && rng.gen_bool(0.7) {
                        let restart_ms = at_ms + rng.gen_range(1_500u64..3_500);
                        if restart_ms < hi_ms && used_ms.insert(restart_ms) {
                            schedule.add(
                                Time::from_millis(restart_ms),
                                ScenarioEvent::Restart { replica },
                            );
                        }
                    }
                }
                // Mute inter-cluster traffic (E4.3-style Byzantine).
                22..=33 => {
                    let Some((ci, replica)) =
                        pick_harmable(rng, config, &membership, &harmed, &harmed_replicas)
                    else {
                        continue;
                    };
                    harmed[ci] += 1;
                    harmed_replicas.insert(replica);
                    schedule.add(at, ScenarioEvent::MuteInterCluster { replica });
                }
                // Silence the local ordering role.
                34..=41 => {
                    let Some((ci, replica)) =
                        pick_harmable(rng, config, &membership, &harmed, &harmed_replicas)
                    else {
                        continue;
                    };
                    harmed[ci] += 1;
                    harmed_replicas.insert(replica);
                    schedule.add(at, ScenarioEvent::SilenceLocalLeader { replica });
                }
                // Join a fresh replica.
                42..=53 => {
                    if !protocol.reconfigurable() {
                        continue;
                    }
                    let cluster = ClusterId(rng.gen_range(0..config.clusters.len() as u32));
                    let region = Region::ALL[rng.gen_range(0..Region::ALL.len())];
                    schedule.add(at, ScenarioEvent::Join { cluster, region });
                }
                // An initial replica leaves.
                54..=61 => {
                    if !protocol.reconfigurable() {
                        continue;
                    }
                    let Some((ci, replica)) =
                        pick_harmable(rng, config, &membership, &harmed, &harmed_replicas)
                    else {
                        continue;
                    };
                    // The initial leader leaving mid-run is a leader change on
                    // top of a reconfig; allowed, but never the cluster's last
                    // fault budget — pick_harmable already guarantees ≤ f.
                    harmed[ci] += 1;
                    harmed_replicas.insert(replica);
                    schedule.add(at, ScenarioEvent::Leave { replica });
                }
                // Partition a cluster pair, always healed within the window.
                62..=71 => {
                    if !partitioned.is_empty() {
                        continue; // One active partition at a time.
                    }
                    let a = rng.gen_range(0..config.clusters.len() as u32);
                    let b = rng.gen_range(0..config.clusters.len() as u32);
                    if a == b {
                        continue;
                    }
                    let heal_ms = at_ms + rng.gen_range(800u64..2_400);
                    if heal_ms >= hi_ms || !used_ms.insert(heal_ms) {
                        continue;
                    }
                    partitioned.insert((a.min(b), a.max(b)));
                    schedule.add(at, ScenarioEvent::Partition { a: ClusterId(a), b: ClusterId(b) });
                    schedule.add(
                        Time::from_millis(heal_ms),
                        ScenarioEvent::Heal { a: ClusterId(a), b: ClusterId(b) },
                    );
                }
                // Switch a cluster's workload mix. Never to 100% reads: a round
                // only executes once every cluster contributes its stage 1, so a
                // write-free cluster would stall write completion system-wide.
                72..=81 => {
                    let cluster = ClusterId(rng.gen_range(0..config.clusters.len() as u32));
                    let read_ratio = [0.3, 0.6, 0.9][rng.gen_range(0..3usize)];
                    let workload =
                        WorkloadSpec { read_ratio, key_space: 500, ..WorkloadSpec::default() };
                    schedule.add(at, ScenarioEvent::WorkloadSwitch { cluster, workload });
                }
                // A new client joins a cluster.
                82..=90 => {
                    let cluster = ClusterId(rng.gen_range(0..config.clusters.len() as u32));
                    let workload = WorkloadSpec { key_space: 500, ..WorkloadSpec::default() };
                    schedule.add(at, ScenarioEvent::ClientJoin { cluster, workload });
                }
                // Shift the latency model (uniform RTT well under the timeouts).
                _ => {
                    let rtt = rng.gen_range(40u64..220) as f64;
                    schedule.add(
                        at,
                        ScenarioEvent::LatencyShift { latency: LatencyModel::uniform(rtt) },
                    );
                }
            }
        }
        schedule
    }
}

/// The shared fault-injection state one case's draws spend from: distinct
/// event times, per-cluster harm counts and the set of already-faulty replicas.
/// Both the schedule draw and the byzantine draw debit it, so their combined
/// targets stay within `f` per cluster.
struct FaultBudget {
    used_ms: BTreeSet<u64>,
    harmed: Vec<usize>,
    harmed_replicas: BTreeSet<ReplicaId>,
}

/// Draw one non-honest Byzantine behavior, uniformly across the adversary
/// families (suppression permilles from a small fixed set).
fn draw_behavior(rng: &mut StdRng) -> ByzantineBehavior {
    match rng.gen_range(0u32..7) {
        0 => ByzantineBehavior::EquivocateLocal,
        1 => ByzantineBehavior::EquivocateRemote,
        2 => ByzantineBehavior::InvalidCert,
        3 => ByzantineBehavior::StaleCert,
        4 => ByzantineBehavior::SuppressShares {
            permille: [250, 500, 800][rng.gen_range(0..3usize)],
        },
        5 => ByzantineBehavior::LyingCatchUp,
        _ => ByzantineBehavior::BrdForgery,
    }
}

/// Draw an event time in `[lo_ms, hi_ms)` not used yet (up to 16 attempts).
fn fresh_time(rng: &mut StdRng, used: &mut BTreeSet<u64>, lo_ms: u64, hi_ms: u64) -> Option<u64> {
    for _ in 0..16 {
        let t = rng.gen_range(lo_ms..hi_ms);
        if used.insert(t) {
            return Some(t);
        }
    }
    None
}

/// Pick a replica that can absorb one more fault: its cluster's harm count is
/// below `f = (n-1)/3` and the replica itself is unharmed. Returns the cluster
/// index alongside the replica.
fn pick_harmable(
    rng: &mut StdRng,
    config: &SystemConfig,
    membership: &ava_types::Membership,
    harmed: &[usize],
    harmed_replicas: &BTreeSet<ReplicaId>,
) -> Option<(usize, ReplicaId)> {
    let eligible: Vec<(usize, ReplicaId)> = config
        .clusters
        .iter()
        .enumerate()
        .filter(|(ci, spec)| harmed[*ci] < membership.f(spec.id))
        .flat_map(|(ci, spec)| {
            spec.replicas
                .iter()
                .map(move |(id, _)| (ci, *id))
                .filter(|(_, id)| !harmed_replicas.contains(id))
        })
        .collect();
    if eligible.is_empty() {
        None
    } else {
        Some(eligible[rng.gen_range(0..eligible.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_yields_byte_identical_cases() {
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        for seed in 0..40 {
            let a = generator.case(seed);
            let b = generator.case(seed);
            assert_eq!(a.encode(), b.encode(), "seed {seed} must be deterministic");
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn distinct_seeds_yield_distinct_cases() {
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        let prints: BTreeSet<String> = (0..40).map(|s| generator.case(s).fingerprint()).collect();
        assert!(prints.len() >= 39, "seeds must not collide: {} distinct", prints.len());
    }

    #[test]
    fn generated_schedules_build_and_respect_budgets() {
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        for seed in 0..200 {
            let case = generator.case(seed);
            let scenario = case
                .try_scenario()
                .unwrap_or_else(|e| panic!("seed {seed} generated an invalid schedule: {e}"));
            // Fault budget: per cluster, harmed replicas stay within f.
            let membership = case.config.membership();
            for spec in &case.config.clusters {
                let harms = case
                    .schedule
                    .iter()
                    .filter(|(_, ev)| match ev {
                        ScenarioEvent::Crash { replica }
                        | ScenarioEvent::MuteInterCluster { replica }
                        | ScenarioEvent::SilenceLocalLeader { replica }
                        | ScenarioEvent::Leave { replica } => {
                            spec.replicas.iter().any(|(id, _)| id == replica)
                        }
                        _ => false,
                    })
                    .count();
                assert!(
                    harms <= membership.f(spec.id),
                    "seed {seed}: cluster {} takes {harms} faults with f={}",
                    spec.id,
                    membership.f(spec.id)
                );
            }
            // Every partition is healed within the event window.
            let partitions = case
                .schedule
                .iter()
                .filter(|(_, ev)| matches!(ev, ScenarioEvent::Partition { .. }))
                .count();
            let heals = case
                .schedule
                .iter()
                .filter(|(_, ev)| matches!(ev, ScenarioEvent::Heal { .. }))
                .count();
            assert_eq!(partitions, heals, "seed {seed}: unhealed partition");
            drop(scenario);
        }
    }

    #[test]
    fn event_times_are_distinct_and_inside_the_window() {
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        let cfg = FuzzConfig::quick();
        let end = Time::ZERO + cfg.run;
        let grace_start = Time(end.as_micros() - cfg.grace.as_micros());
        for seed in 0..200 {
            let case = generator.case(seed);
            let mut times = BTreeSet::new();
            for (at, _) in case.schedule.iter() {
                assert!(times.insert(*at), "seed {seed}: duplicate event time {at}");
                assert!(*at >= Time::from_secs(1), "seed {seed}: event before 1s");
                assert!(*at < grace_start, "seed {seed}: event inside the grace tail");
            }
        }
    }

    #[test]
    fn broker_draws_never_shift_the_schedule_stream() {
        // Turning the broker knob on must reproduce the exact same topology,
        // options and schedule per seed — the tier rides on top.
        let plain = ScheduleGenerator::new(FuzzConfig::quick());
        let brokered =
            ScheduleGenerator::new(FuzzConfig { broker_probability: 1.0, ..FuzzConfig::quick() });
        for seed in 0..40 {
            let a = plain.case(seed);
            let b = brokered.case(seed);
            assert!(a.brokers.is_none(), "quick profile draws no brokers");
            assert!(b.brokers.is_some(), "probability 1.0 always draws a tier");
            assert_eq!(a.clusters, b.clusters, "seed {seed}: topology shifted");
            assert_eq!(a.opts.seed, b.opts.seed, "seed {seed}: sim seed shifted");
            assert_eq!(
                format!("{:?}", a.schedule.sorted()),
                format!("{:?}", b.schedule.sorted()),
                "seed {seed}: schedule shifted"
            );
            assert_ne!(a.fingerprint(), b.fingerprint(), "tier must be part of the encoding");
        }
    }

    #[test]
    fn byzantine_draws_share_the_fault_budget_and_never_shift_the_stream() {
        // Turning the byzantine knob on must reproduce the exact same topology,
        // options and non-corrupt schedule per seed, reproduce byte-for-byte
        // from the seed, and keep total faulty replicas (crash/mute/silence/
        // leave/corrupt targets combined) within f per cluster.
        let plain = ScheduleGenerator::new(FuzzConfig::quick());
        let byz = ScheduleGenerator::new(FuzzConfig {
            byzantine_probability: 1.0,
            ..FuzzConfig::quick()
        });
        let non_corrupt = |s: &Schedule| -> String {
            let kept: Vec<_> = s
                .sorted()
                .into_iter()
                .filter(|(_, ev)| !matches!(ev, ScenarioEvent::Corrupt { .. }))
                .collect();
            format!("{kept:?}")
        };
        let mut corrupts_drawn = 0usize;
        for seed in 0..60 {
            let a = plain.case(seed);
            let b = byz.case(seed);
            assert_eq!(a.clusters, b.clusters, "seed {seed}: topology shifted");
            assert_eq!(a.opts.seed, b.opts.seed, "seed {seed}: sim seed shifted");
            assert_eq!(
                non_corrupt(&a.schedule),
                non_corrupt(&b.schedule),
                "seed {seed}: non-corrupt schedule shifted"
            );
            assert_eq!(b.encode(), byz.case(seed).encode(), "seed {seed}: not reproducible");
            b.try_scenario().unwrap_or_else(|e| panic!("seed {seed}: invalid scenario: {e}"));
            let membership = b.config.membership();
            for spec in &b.config.clusters {
                let faulty: BTreeSet<ReplicaId> = b
                    .schedule
                    .iter()
                    .filter_map(|(_, ev)| match ev {
                        ScenarioEvent::Crash { replica }
                        | ScenarioEvent::MuteInterCluster { replica }
                        | ScenarioEvent::SilenceLocalLeader { replica }
                        | ScenarioEvent::Leave { replica }
                        | ScenarioEvent::Corrupt { replica, .. }
                            if spec.replicas.iter().any(|(id, _)| id == replica) =>
                        {
                            Some(*replica)
                        }
                        _ => None,
                    })
                    .collect();
                assert!(
                    faulty.len() <= membership.f(spec.id),
                    "seed {seed}: cluster {} has {} faulty replicas with f={}",
                    spec.id,
                    faulty.len(),
                    membership.f(spec.id)
                );
            }
            corrupts_drawn += b
                .schedule
                .iter()
                .filter(|(_, ev)| matches!(ev, ScenarioEvent::Corrupt { .. }))
                .count();
        }
        assert!(corrupts_drawn > 0, "probability 1.0 must actually draw corrupt events");
    }

    #[test]
    fn drawn_broker_tiers_are_well_formed_and_retry_free() {
        let generator =
            ScheduleGenerator::new(FuzzConfig { broker_probability: 1.0, ..FuzzConfig::quick() });
        for seed in 0..40 {
            let case = generator.case(seed);
            let tier = case.brokers.as_ref().expect("tier drawn");
            assert!(tier.load.issue_for < case.run, "seed {seed}: issue window too long");
            assert!(
                tier.retry_timeout.as_micros() > case.run.as_micros(),
                "seed {seed}: fuzz tiers must disable batch retries"
            );
            case.try_scenario().unwrap_or_else(|e| panic!("seed {seed}: invalid scenario: {e}"));
            let snippet = case.builder_snippet();
            assert!(snippet.contains(".brokers(BrokerTier {"), "snippet misses the tier");
        }
    }

    #[test]
    fn snippet_restates_the_case() {
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        // Find a seed with at least one event so the snippet has schedule lines.
        let case = (0..100)
            .map(|s| generator.case(s))
            .find(|c| !c.schedule.is_empty())
            .expect("some seed draws events");
        let snippet = case.builder_snippet();
        assert!(snippet.contains("SystemConfig::homogeneous_regions"));
        assert!(snippet.contains(&format!(".seed({})", case.opts.seed)));
        assert!(snippet.contains(".build();"));
        for (_, event) in case.schedule.iter() {
            // Every scheduled event appears in the snippet in some form.
            let needle = match event {
                ScenarioEvent::Crash { .. } => ".crash_at(",
                ScenarioEvent::Restart { .. } => ".restart_at(",
                ScenarioEvent::MuteInterCluster { .. } => ".mute_inter_cluster_at(",
                ScenarioEvent::SilenceLocalLeader { .. } => "SilenceLocalLeader",
                ScenarioEvent::Join { .. } => ".join_at(",
                ScenarioEvent::Leave { .. } => ".leave_at(",
                ScenarioEvent::ClientJoin { .. } => "ClientJoin",
                ScenarioEvent::WorkloadSwitch { .. } => "WorkloadSwitch",
                ScenarioEvent::Partition { .. } => ".partition_at(",
                ScenarioEvent::Heal { .. } => ".heal_at(",
                ScenarioEvent::LatencyShift { .. } => ".latency_shift_at(",
                ScenarioEvent::Corrupt { .. } => ".corrupt_at(",
            };
            assert!(snippet.contains(needle), "snippet misses {event:?}");
        }
    }
}
