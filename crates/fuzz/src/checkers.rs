//! Always-on invariant checkers: observers that watch a run's [`Output`] stream
//! and record violations of the protocol's core guarantees.
//!
//! Each checker is a small state machine fed every output (and every scheduled
//! event) in emission order; violations are collected, never panicked, so one run
//! can report every broken invariant at once and the shrinker can re-judge
//! candidate schedules cheaply. [`CheckerSet::standard`] bundles the full suite
//! and plugs into the scenario runner as a single [`RunObserver`].
//!
//! The checkers deliberately know nothing about the schedule that produced a
//! run (beyond the crash forgiveness the liveness checker needs): they judge the
//! output stream alone, which is what lets the canary suite replay doctored
//! streams through them offline.

use ava_scenario::{DynDeployment, RunObserver, ScenarioEvent};
use ava_types::{ClusterId, Output, ReplicaId, Round, Time, TxId};
use std::collections::{BTreeMap, BTreeSet};

/// A detected invariant violation: which checker fired and a human-readable,
/// deterministic description (derived from event data only, so the same run
/// produces byte-identical violations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the checker that fired (see [`InvariantChecker::name`]).
    pub checker: &'static str,
    /// What went wrong, with the offending rounds/replicas/digests.
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.checker, self.details)
    }
}

/// An invariant checker: fed the output stream (and scheduled events) of one
/// run, accumulates [`Violation`]s.
///
/// Implementors are plain state machines — no deployment access — so they can
/// run live (wired into [`CheckerSet`], a [`RunObserver`]) or offline over a
/// recorded stream (the canary suite).
pub trait InvariantChecker {
    /// Stable name used in reports and canary expectations.
    fn name(&self) -> &'static str;

    /// Feed one emitted output.
    fn observe(&mut self, output: &Output);

    /// Feed one applied schedule event (default: ignored).
    fn scheduled(&mut self, at: Time, event: &ScenarioEvent) {
        let _ = (at, event);
    }

    /// The run ended at virtual time `end`; check end-of-run invariants.
    fn finish(&mut self, end: Time) {
        let _ = end;
    }

    /// Violations recorded so far.
    fn violations(&self) -> &[Violation];
}

/// Cross-replica agreement on executed rounds: every replica that executes round
/// `r` must report the same global transaction count, and — when a real state
/// machine is deployed — the same full state digest. `RoundExecuted.txns` is
/// the number of transactions the round carried across *all* clusters, and
/// `StateDigest.digest` fingerprints the entire replicated state after Stage 3
/// of the round, so replicas disagreeing on either have diverged. The digest
/// comparison is global (not per-cluster): Stage 3 executes the union of every
/// cluster's batch deterministically, so all replicas of all clusters hold the
/// same state at the same round. Legacy counter-machine runs emit no
/// `StateDigest`, leaving the digest arm dormant.
#[derive(Default)]
pub struct ExecutionAgreementChecker {
    /// round -> (txns, first reporter).
    rounds: BTreeMap<Round, (usize, ReplicaId)>,
    /// round -> (state digest, first reporter).
    digests: BTreeMap<Round, ([u8; 32], ReplicaId)>,
    flagged: BTreeSet<Round>,
    digest_flagged: BTreeSet<Round>,
    violations: Vec<Violation>,
}

impl ExecutionAgreementChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for ExecutionAgreementChecker {
    fn name(&self) -> &'static str {
        "execution-agreement"
    }

    fn observe(&mut self, output: &Output) {
        match output {
            Output::RoundExecuted { replica, round, txns, .. } => match self.rounds.get(round) {
                None => {
                    self.rounds.insert(*round, (*txns, *replica));
                }
                Some((first_txns, first_replica)) => {
                    if txns != first_txns && self.flagged.insert(*round) {
                        self.violations.push(Violation {
                            checker: self.name(),
                            details: format!(
                                "round {round}: {replica} executed {txns} txns but \
                                 {first_replica} executed {first_txns}"
                            ),
                        });
                    }
                }
            },
            Output::StateDigest { replica, round, digest, .. } => match self.digests.get(round) {
                None => {
                    self.digests.insert(*round, (*digest, *replica));
                }
                Some((first_digest, first_replica)) => {
                    if digest != first_digest && self.digest_flagged.insert(*round) {
                        self.violations.push(Violation {
                            checker: self.name(),
                            details: format!(
                                "round {round}: {replica} reports state digest {} but \
                                     {first_replica} reports {}",
                                hex8(digest),
                                hex8(first_digest)
                            ),
                        });
                    }
                }
            },
            _ => {}
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// The prefix property: within one incarnation, a replica executes rounds in
/// strictly increasing order — it never re-executes or goes back. A restart
/// resets the cursor (the replica may legitimately resume at a round it executed
/// just before crashing, when its peers had not yet finished that round);
/// catch-up *transfers* rounds without re-executing them, so gaps are fine.
#[derive(Default)]
pub struct PrefixChecker {
    last: BTreeMap<ReplicaId, Round>,
    violations: Vec<Violation>,
}

impl PrefixChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for PrefixChecker {
    fn name(&self) -> &'static str {
        "prefix"
    }

    fn observe(&mut self, output: &Output) {
        match output {
            Output::RoundExecuted { replica, round, .. } => {
                if let Some(prev) = self.last.get(replica) {
                    if round <= prev {
                        self.violations.push(Violation {
                            checker: self.name(),
                            details: format!(
                                "{replica} executed round {round} after already executing \
                                 round {prev} in the same incarnation"
                            ),
                        });
                    }
                }
                let entry = self.last.entry(*replica).or_insert(*round);
                *entry = (*entry).max(*round);
            }
            Output::ReplicaRestarted { replica, .. } => {
                self.last.remove(replica);
            }
            _ => {}
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Checkpoint-chain integrity: checkpoint digests are round-deterministic
/// within a cluster (see `ava-store` — the digest commits the per-cluster
/// packing anchor `next_height`, so sibling clusters legitimately differ), so
/// every replica of a cluster installing a checkpoint for round `r` must report
/// the same digest, and each replica's own chain must be strictly
/// round-monotonic (`ReplicaStore` rejects stale installs; seeing one emitted
/// means the store was bypassed).
#[derive(Default)]
pub struct CheckpointChecker {
    /// (cluster, round) -> (digest, first reporter).
    digests: BTreeMap<(ClusterId, Round), ([u8; 32], ReplicaId)>,
    /// replica -> last installed round.
    chains: BTreeMap<ReplicaId, Round>,
    flagged: BTreeSet<(ClusterId, Round)>,
    violations: Vec<Violation>,
}

impl CheckpointChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for CheckpointChecker {
    fn name(&self) -> &'static str {
        "checkpoint-chain"
    }

    fn observe(&mut self, output: &Output) {
        let Output::CheckpointInstalled { replica, cluster, round, digest, .. } = output else {
            return;
        };
        match self.digests.get(&(*cluster, *round)) {
            None => {
                self.digests.insert((*cluster, *round), (*digest, *replica));
            }
            Some((first_digest, first_replica)) => {
                if digest != first_digest && self.flagged.insert((*cluster, *round)) {
                    self.violations.push(Violation {
                        checker: self.name(),
                        details: format!(
                            "checkpoint digest mismatch at {cluster} round {round}: {replica} \
                             installed {} but {first_replica} installed {}",
                            hex8(digest),
                            hex8(first_digest)
                        ),
                    });
                }
            }
        }
        if let Some(prev) = self.chains.get(replica) {
            if round <= prev {
                self.violations.push(Violation {
                    checker: self.name(),
                    details: format!(
                        "{replica} installed checkpoint for round {round} after round {prev}: \
                         chain must be strictly round-monotonic"
                    ),
                });
            }
        }
        let entry = self.chains.entry(*replica).or_insert(*round);
        *entry = (*entry).max(*round);
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Same-round reconfiguration-set agreement: every replica that *executes* round
/// `r` applies the same set of `(replica, cluster, joined)` reconfigurations in
/// it. Reporters that merely transferred the round via catch-up emit no
/// `ReconfigApplied`, so only reporters that also emitted `RoundExecuted` for
/// the round are compared. A joining replica's bootstrap self-report
/// (`joined && replica == reporter` — it learns its own join from the transfer
/// without executing the commit round) is excluded.
#[derive(Default)]
pub struct ReconfigAgreementChecker {
    /// (round, reporter) -> applied set.
    sets: BTreeMap<(Round, ReplicaId), BTreeSet<(u32, u32, bool)>>,
    /// (round, reporter) pairs that executed the round.
    executed: BTreeSet<(Round, ReplicaId)>,
    violations: Vec<Violation>,
}

impl ReconfigAgreementChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for ReconfigAgreementChecker {
    fn name(&self) -> &'static str {
        "reconfig-agreement"
    }

    fn observe(&mut self, output: &Output) {
        match output {
            Output::ReconfigApplied { replica, cluster, joined, round, reporter, .. } => {
                if *joined && replica == reporter {
                    // Bootstrap self-report of a joining replica: it reports its
                    // own join without having executed the commit round.
                    return;
                }
                self.sets
                    .entry((*round, *reporter))
                    .or_default()
                    .insert((replica.0, cluster.0, *joined));
            }
            Output::RoundExecuted { replica, round, .. } => {
                self.executed.insert((*round, *replica));
            }
            _ => {}
        }
    }

    fn finish(&mut self, _end: Time) {
        // Group recorded sets by round, keeping only reporters that executed the
        // round, and compare everyone against the first executor's set. An
        // executor with *no* recorded set applied the empty set — that counts.
        let rounds: BTreeSet<Round> = self.sets.keys().map(|(round, _)| *round).collect();
        for round in rounds {
            let executors: Vec<ReplicaId> = self
                .executed
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, reporter)| *reporter)
                .collect();
            let Some((first, rest)) = executors.split_first() else {
                continue;
            };
            let empty = BTreeSet::new();
            let reference = self.sets.get(&(round, *first)).unwrap_or(&empty);
            for reporter in rest {
                let set = self.sets.get(&(round, *reporter)).unwrap_or(&empty);
                if set != reference {
                    self.violations.push(Violation {
                        checker: self.name(),
                        details: format!(
                            "round {round}: {reporter} applied reconfig set {set:?} but {first} \
                             applied {reference:?}"
                        ),
                    });
                }
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Catch-up liveness: every correct replica that restarts eventually completes
/// state-transfer catch-up (`RecoveryCompleted`). A restart too close to the end
/// of the run (within the grace window) is not judged, and a replica crashed
/// again after its restart is forgiven — it is no longer correct.
pub struct CatchUpChecker {
    grace: ava_types::Duration,
    /// replica -> restart time (pending recoveries).
    pending: BTreeMap<ReplicaId, Time>,
    /// Scheduled crash times per replica (for post-restart-crash forgiveness).
    crashes: Vec<(Time, ReplicaId)>,
    violations: Vec<Violation>,
}

impl Default for CatchUpChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl CatchUpChecker {
    /// Default grace window: restarts within 3 s of the run end are not judged.
    pub fn new() -> Self {
        CatchUpChecker {
            grace: ava_types::Duration::from_secs(3),
            pending: BTreeMap::new(),
            crashes: Vec::new(),
            violations: Vec::new(),
        }
    }
}

impl InvariantChecker for CatchUpChecker {
    fn name(&self) -> &'static str {
        "catch-up-liveness"
    }

    fn observe(&mut self, output: &Output) {
        match output {
            Output::ReplicaRestarted { replica, at, .. } => {
                self.pending.insert(*replica, *at);
            }
            Output::RecoveryCompleted { replica, .. } => {
                self.pending.remove(replica);
            }
            _ => {}
        }
    }

    fn scheduled(&mut self, at: Time, event: &ScenarioEvent) {
        if let ScenarioEvent::Crash { replica } = event {
            self.crashes.push((at, *replica));
        }
    }

    fn finish(&mut self, end: Time) {
        for (replica, restarted_at) in &self.pending {
            if *restarted_at + self.grace > end {
                continue; // Too close to the end of the run to judge.
            }
            let crashed_again =
                self.crashes.iter().any(|(at, crashed)| crashed == replica && at > restarted_at);
            if crashed_again {
                continue;
            }
            self.violations.push(Violation {
                checker: self.name(),
                details: format!(
                    "{replica} restarted at {:.1}s but never completed catch-up by the end of \
                     the run ({:.1}s)",
                    restarted_at.as_secs_f64(),
                    end.as_secs_f64()
                ),
            });
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Broker-tier conservation: every operation a virtual client is *acked* for
/// exists exactly once in committed state. Three things can break it — a
/// duplicate ack (the broker demultiplexes one commit to the client twice), a
/// duplicate commit (a batch admitted twice, e.g. a retry double-ordered), and a
/// phantom ack (a write acked that no replica ever committed from a batch).
///
/// Fuzz-drawn broker tiers disable batch retries (`retry_timeout` longer than
/// the run): with retries, a resend to a *different* replica can legitimately
/// double-admit (admission dedup is per-replica; the TOB pool's digest dedup
/// still prevents double-apply) and duplicate `BatchOpCommitted` traces are
/// expected. Without retries, the committed trace is exactly-once.
///
/// The phantom-ack check judges virtual-client *write* acks only (reads are
/// acked straight from a `BatchReply` and never produce a commit trace) and
/// only on streams carrying at least one `BatchOpCommitted` — a stream with no
/// batch commits at all is a direct-path run this checker has no business
/// judging.
#[derive(Default)]
pub struct BrokerConservationChecker {
    /// Virtual-client acks seen: tx -> is_write.
    acked: BTreeMap<TxId, bool>,
    /// Batch-op commit traces seen (exactly-once under fuzz tiers).
    committed: BTreeSet<TxId>,
    saw_batch_commits: bool,
    violations: Vec<Violation>,
}

impl BrokerConservationChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for BrokerConservationChecker {
    fn name(&self) -> &'static str {
        "broker-conservation"
    }

    fn observe(&mut self, output: &Output) {
        match output {
            Output::TxCompleted { tx, client, is_write, .. }
                if ava_workload::is_virtual_client(*client) =>
            {
                if self.acked.insert(*tx, *is_write).is_some() {
                    self.violations.push(Violation {
                        checker: self.name(),
                        details: format!("virtual client {client} was acked twice for {tx:?}"),
                    });
                }
            }
            Output::BatchOpCommitted { replica, broker, batch, tx, .. } => {
                self.saw_batch_commits = true;
                if !self.committed.insert(*tx) {
                    self.violations.push(Violation {
                        checker: self.name(),
                        details: format!(
                            "{tx:?} committed twice from a batch ({replica} reporting \
                             {broker}/{batch}) — batch admission must be exactly-once"
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self, _end: Time) {
        if !self.saw_batch_commits {
            return;
        }
        for (tx, is_write) in &self.acked {
            if *is_write && !self.committed.contains(tx) {
                self.violations.push(Violation {
                    checker: self.name(),
                    details: format!(
                        "phantom ack: virtual-client write {tx:?} was acked but never appeared \
                         in committed state"
                    ),
                });
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Certificate-validity soundness: honest runs never produce
/// [`Output::ByzantineRejected`] — every emission site sits on a path only
/// forged, tampered or lying artifacts can reach. Rejection evidence on a run
/// whose schedule holds no `Corrupt` event, or emitted *before* the first
/// corruption was applied, means an honest artifact failed verification: a
/// false positive that would poison every adversary experiment built on the
/// evidence stream.
#[derive(Default)]
pub struct CertificateValidityChecker {
    first_corrupt: Option<Time>,
    violations: Vec<Violation>,
}

impl CertificateValidityChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for CertificateValidityChecker {
    fn name(&self) -> &'static str {
        "certificate-validity"
    }

    fn observe(&mut self, output: &Output) {
        let Output::ByzantineRejected { replica, round, kind, at, .. } = output else {
            return;
        };
        let justified = self.first_corrupt.is_some_and(|first| *at >= first);
        if !justified {
            self.violations.push(Violation {
                checker: self.name(),
                details: format!(
                    "{replica} rejected a {} artifact at {:.1}s round {round}, but {} — honest \
                     material must never fail verification",
                    kind.label(),
                    at.as_secs_f64(),
                    match self.first_corrupt {
                        None => "no replica was ever corrupted".to_string(),
                        Some(first) =>
                            format!("the first corruption applies at {:.1}s", first.as_secs_f64()),
                    }
                ),
            });
        }
    }

    fn scheduled(&mut self, at: Time, event: &ScenarioEvent) {
        if matches!(event, ScenarioEvent::Corrupt { .. }) {
            self.first_corrupt = Some(self.first_corrupt.map_or(at, |f| f.min(at)));
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Equivocation-exposure soundness: [`Output::EquivocationObserved`] must carry
/// genuinely conflicting contents (`first != second`) and must only appear
/// after a *package-mutating* corruption
/// ([`ava_scenario::ByzantineBehavior::mutates_packages`]) was applied —
/// suppression, stale replay, BRD forgery and lying catch-up never produce
/// conflicting same-slot packages, so evidence under those schedules is a
/// false accusation.
#[derive(Default)]
pub struct EquivocationExposureChecker {
    first_mutating_corrupt: Option<Time>,
    violations: Vec<Violation>,
}

impl EquivocationExposureChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl InvariantChecker for EquivocationExposureChecker {
    fn name(&self) -> &'static str {
        "equivocation-exposure"
    }

    fn observe(&mut self, output: &Output) {
        let Output::EquivocationObserved { replica, round, first, second, at, .. } = output else {
            return;
        };
        if first == second {
            self.violations.push(Violation {
                checker: self.name(),
                details: format!(
                    "{replica} reported an equivocation at {:.1}s round {round} with identical \
                     digests — same-content packages are not an equivocation",
                    at.as_secs_f64()
                ),
            });
            return;
        }
        let justified = self.first_mutating_corrupt.is_some_and(|f| *at >= f);
        if !justified {
            self.violations.push(Violation {
                checker: self.name(),
                details: format!(
                    "{replica} exposed an equivocation at {:.1}s round {round}, but no \
                     package-mutating corruption was active — honest replicas never ship \
                     conflicting packages for one slot",
                    at.as_secs_f64()
                ),
            });
        }
    }

    fn scheduled(&mut self, at: Time, event: &ScenarioEvent) {
        if let ScenarioEvent::Corrupt { behavior, .. } = event {
            if behavior.mutates_packages() {
                self.first_mutating_corrupt =
                    Some(self.first_mutating_corrupt.map_or(at, |f| f.min(at)));
            }
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// The full checker suite, usable as one [`RunObserver`] (wire it into
/// `Scenario::run_observed`) or offline via [`CheckerSet::replay`].
pub struct CheckerSet {
    checkers: Vec<Box<dyn InvariantChecker>>,
    end: Time,
}

impl Default for CheckerSet {
    fn default() -> Self {
        Self::standard()
    }
}

impl CheckerSet {
    /// The standard always-on suite: execution agreement, prefix, checkpoint
    /// chain, reconfig-set agreement, catch-up liveness, broker conservation,
    /// certificate validity, equivocation exposure.
    pub fn standard() -> Self {
        CheckerSet {
            checkers: vec![
                Box::new(ExecutionAgreementChecker::new()),
                Box::new(PrefixChecker::new()),
                Box::new(CheckpointChecker::new()),
                Box::new(ReconfigAgreementChecker::new()),
                Box::new(CatchUpChecker::new()),
                Box::new(BrokerConservationChecker::new()),
                Box::new(CertificateValidityChecker::new()),
                Box::new(EquivocationExposureChecker::new()),
            ],
            end: Time::ZERO,
        }
    }

    /// A set holding exactly `checkers`.
    pub fn new(checkers: Vec<Box<dyn InvariantChecker>>) -> Self {
        CheckerSet { checkers, end: Time::ZERO }
    }

    /// Names of the standard checkers, in evaluation order.
    pub fn standard_names() -> Vec<&'static str> {
        Self::standard().checkers.iter().map(|c| c.name()).collect()
    }

    /// All violations recorded so far, in checker order then detection order.
    pub fn violations(&self) -> Vec<Violation> {
        self.checkers.iter().flat_map(|c| c.violations().iter().cloned()).collect()
    }

    /// Replay a recorded stream through a fresh standard suite: feed every
    /// scheduled event, then every output in order, then finish at `end`.
    /// This is how the canary suite judges doctored output streams offline.
    pub fn replay(
        outputs: &[Output],
        events: &[(Time, ScenarioEvent)],
        end: Time,
    ) -> Vec<Violation> {
        let mut set = Self::standard();
        for (at, event) in events {
            for checker in &mut set.checkers {
                checker.scheduled(*at, event);
            }
        }
        for output in outputs {
            for checker in &mut set.checkers {
                checker.observe(output);
            }
        }
        for checker in &mut set.checkers {
            checker.finish(end);
        }
        set.violations()
    }
}

impl RunObserver for CheckerSet {
    fn on_output(&mut self, output: &Output) {
        for checker in &mut self.checkers {
            checker.observe(output);
        }
    }

    fn on_event(&mut self, at: Time, event: &ScenarioEvent) {
        for checker in &mut self.checkers {
            checker.scheduled(at, event);
        }
    }

    fn on_end(&mut self, dep: &dyn DynDeployment) {
        self.end = dep.now();
        for checker in &mut self.checkers {
            checker.finish(self.end);
        }
    }
}

fn hex8(digest: &[u8; 32]) -> String {
    digest[..4].iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{ClusterId, Duration};

    fn executed(replica: u32, round: u64, txns: usize) -> Output {
        Output::RoundExecuted {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            round: Round(round),
            txns,
            at: Time::from_millis(round * 100),
        }
    }

    fn checkpoint(replica: u32, round: u64, digest: [u8; 32]) -> Output {
        Output::CheckpointInstalled {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            round: Round(round),
            digest,
            adopted: false,
            at: Time::from_millis(round * 100),
        }
    }

    fn feed(checker: &mut dyn InvariantChecker, outputs: &[Output]) {
        for o in outputs {
            checker.observe(o);
        }
        checker.finish(Time::from_secs(60));
    }

    fn state_digest(replica: u32, round: u64, digest: [u8; 32]) -> Output {
        Output::StateDigest {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            round: Round(round),
            digest,
            entries: 10,
            value_bytes: 1_000,
            at: Time::from_millis(round * 100),
        }
    }

    #[test]
    fn execution_agreement_flags_divergent_state_digests_once_per_round() {
        let mut c = ExecutionAgreementChecker::new();
        feed(
            &mut c,
            &[
                // Identical txn counts everywhere: the legacy arm stays quiet.
                executed(0, 1, 20),
                executed(1, 1, 20),
                state_digest(0, 1, [1; 32]),
                state_digest(1, 1, [1; 32]),
                state_digest(2, 1, [2; 32]),
                state_digest(3, 1, [3; 32]),
            ],
        );
        assert_eq!(c.violations().len(), 1, "one violation per divergent round");
        assert!(c.violations()[0].details.contains("state digest"));
        let mut ok = ExecutionAgreementChecker::new();
        feed(&mut ok, &[state_digest(0, 1, [1; 32]), state_digest(1, 1, [1; 32])]);
        assert!(ok.violations().is_empty(), "agreeing digests must not fire");
    }

    #[test]
    fn execution_agreement_flags_divergent_txn_counts_once_per_round() {
        let mut c = ExecutionAgreementChecker::new();
        feed(
            &mut c,
            &[executed(0, 1, 20), executed(1, 1, 20), executed(2, 1, 21), executed(3, 1, 22)],
        );
        assert_eq!(c.violations().len(), 1, "one violation per divergent round");
        assert!(c.violations()[0].details.contains("round r1"));
    }

    #[test]
    fn prefix_checker_flags_duplicates_but_forgives_restarts() {
        let mut c = PrefixChecker::new();
        feed(&mut c, &[executed(0, 1, 20), executed(0, 2, 20), executed(0, 2, 20)]);
        assert_eq!(c.violations().len(), 1);

        // Gaps are fine (catch-up transfers rounds without executing them)...
        let mut c = PrefixChecker::new();
        feed(&mut c, &[executed(0, 1, 20), executed(0, 7, 20)]);
        assert!(c.violations().is_empty());

        // ...and a restart resets the cursor.
        let mut c = PrefixChecker::new();
        c.observe(&executed(0, 5, 20));
        c.observe(&Output::ReplicaRestarted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            recovered_round: Round(4),
            log_rounds_replayed: 1,
            at: Time::from_secs(2),
        });
        c.observe(&executed(0, 5, 20));
        assert!(c.violations().is_empty(), "re-execution across a restart is legitimate");
    }

    #[test]
    fn checkpoint_checker_flags_digest_mismatch_and_non_monotonic_chains() {
        let mut c = CheckpointChecker::new();
        feed(&mut c, &[checkpoint(0, 4, [1; 32]), checkpoint(1, 4, [2; 32])]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("digest mismatch"));

        let mut c = CheckpointChecker::new();
        feed(&mut c, &[checkpoint(0, 8, [1; 32]), checkpoint(0, 4, [2; 32])]);
        assert!(
            c.violations().iter().any(|v| v.details.contains("strictly round-monotonic")),
            "stale install must be flagged"
        );
    }

    #[test]
    fn reconfig_checker_compares_executors_and_skips_bootstrap_self_reports() {
        let rec = |replica: u32, reporter: u32, joined: bool| Output::ReconfigApplied {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            joined,
            round: Round(3),
            at: Time::from_secs(1),
            reporter: ReplicaId(reporter),
        };
        // Two executors applying the same set, plus the joiner's bootstrap
        // self-report: no violation.
        let mut c = ReconfigAgreementChecker::new();
        feed(
            &mut c,
            &[
                rec(9, 0, true),
                rec(9, 1, true),
                rec(9, 9, true),
                executed(0, 3, 20),
                executed(1, 3, 20),
            ],
        );
        assert!(c.violations().is_empty());

        // Executor 1 misses the reconfig: violation.
        let mut c = ReconfigAgreementChecker::new();
        feed(&mut c, &[rec(9, 0, true), executed(0, 3, 20), executed(1, 3, 20)]);
        assert_eq!(c.violations().len(), 1);

        // A non-executor (catch-up transfer) with a different set: no violation.
        let mut c = ReconfigAgreementChecker::new();
        feed(&mut c, &[rec(9, 0, true), rec(8, 2, false), executed(0, 3, 20)]);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn catch_up_checker_flags_stuck_recovery_with_grace_and_forgiveness() {
        let restarted = |replica: u32, at_s: u64| Output::ReplicaRestarted {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            recovered_round: Round(0),
            log_rounds_replayed: 0,
            at: Time::from_secs(at_s),
        };
        // Stuck recovery well before the end: violation.
        let mut c = CatchUpChecker::new();
        c.observe(&restarted(3, 4));
        c.finish(Time::from_secs(20));
        assert_eq!(c.violations().len(), 1);

        // Completed recovery: clean.
        let mut c = CatchUpChecker::new();
        c.observe(&restarted(3, 4));
        c.observe(&Output::RecoveryCompleted {
            replica: ReplicaId(3),
            cluster: ClusterId(0),
            round: Round(9),
            rounds_transferred: 5,
            bytes_transferred: 1000,
            at: Time::from_secs(6),
        });
        c.finish(Time::from_secs(20));
        assert!(c.violations().is_empty());

        // Restart within the grace window of the end: not judged.
        let mut c = CatchUpChecker::new();
        c.observe(&restarted(3, 18));
        c.finish(Time::from_secs(20));
        assert!(c.violations().is_empty());

        // Crashed again after the restart: forgiven.
        let mut c = CatchUpChecker::new();
        c.scheduled(Time::from_secs(6), &ScenarioEvent::Crash { replica: ReplicaId(3) });
        c.observe(&restarted(3, 4));
        c.finish(Time::from_secs(20));
        assert!(c.violations().is_empty());
        let _ = Duration::from_secs(1);
    }

    #[test]
    fn standard_set_has_eight_named_checkers() {
        let names = CheckerSet::standard_names();
        assert_eq!(
            names,
            vec![
                "execution-agreement",
                "prefix",
                "checkpoint-chain",
                "reconfig-agreement",
                "catch-up-liveness",
                "broker-conservation",
                "certificate-validity",
                "equivocation-exposure"
            ]
        );
    }

    fn rejected(at_s: u64) -> Output {
        Output::ByzantineRejected {
            replica: ReplicaId(2),
            cluster: ClusterId(0),
            round: Round(5),
            kind: ava_types::RejectKind::PackageCert,
            at: Time::from_secs(at_s),
        }
    }

    fn equivocation(at_s: u64, first: [u8; 32], second: [u8; 32]) -> Output {
        Output::EquivocationObserved {
            replica: ReplicaId(2),
            cluster: ClusterId(0),
            round: Round(5),
            first,
            second,
            at: Time::from_secs(at_s),
        }
    }

    fn corrupt_event(behavior: ava_scenario::ByzantineBehavior) -> ScenarioEvent {
        ScenarioEvent::Corrupt { replica: ReplicaId(1), behavior }
    }

    #[test]
    fn certificate_validity_flags_unjustified_rejections() {
        use ava_scenario::ByzantineBehavior;
        // Rejection with no Corrupt scheduled at all: violation.
        let mut c = CertificateValidityChecker::new();
        feed(&mut c, &[rejected(5)]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("no replica was ever corrupted"));

        // Rejection before the first corruption applies: violation.
        let mut c = CertificateValidityChecker::new();
        c.scheduled(Time::from_secs(8), &corrupt_event(ByzantineBehavior::InvalidCert));
        feed(&mut c, &[rejected(5)]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("first corruption applies at 8.0s"));

        // Rejection after the corruption: justified.
        let mut c = CertificateValidityChecker::new();
        c.scheduled(Time::from_secs(2), &corrupt_event(ByzantineBehavior::InvalidCert));
        feed(&mut c, &[rejected(5)]);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn equivocation_exposure_requires_conflict_and_a_mutating_corruption() {
        use ava_scenario::ByzantineBehavior;
        // Identical digests are never an equivocation, corruption or not.
        let mut c = EquivocationExposureChecker::new();
        c.scheduled(Time::from_secs(2), &corrupt_event(ByzantineBehavior::EquivocateLocal));
        feed(&mut c, &[equivocation(5, [7; 32], [7; 32])]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("identical digests"));

        // A non-package-mutating corruption cannot justify the evidence.
        let mut c = EquivocationExposureChecker::new();
        c.scheduled(
            Time::from_secs(2),
            &corrupt_event(ByzantineBehavior::SuppressShares { permille: 500 }),
        );
        feed(&mut c, &[equivocation(5, [1; 32], [2; 32])]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("no package-mutating corruption"));

        // Conflicting digests after a mutating corruption: sound evidence.
        let mut c = EquivocationExposureChecker::new();
        c.scheduled(Time::from_secs(2), &corrupt_event(ByzantineBehavior::EquivocateLocal));
        feed(&mut c, &[equivocation(5, [1; 32], [2; 32])]);
        assert!(c.violations().is_empty());
    }

    fn virtual_ack(client: u32, seq: u64, is_write: bool) -> Output {
        let client = ava_types::ClientId(ava_workload::VIRTUAL_CLIENT_BASE + client);
        Output::TxCompleted {
            tx: ava_types::TxId { client, seq },
            client,
            cluster: ClusterId(0),
            issued_at: Time::from_millis(10),
            completed_at: Time::from_millis(60),
            is_write,
        }
    }

    fn batch_committed(client: u32, seq: u64) -> Output {
        Output::BatchOpCommitted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            broker: ReplicaId(2_000_000),
            batch: 1,
            tx: ava_types::TxId {
                client: ava_types::ClientId(ava_workload::VIRTUAL_CLIENT_BASE + client),
                seq,
            },
            at: Time::from_millis(50),
        }
    }

    #[test]
    fn broker_conservation_passes_a_balanced_stream() {
        let mut c = BrokerConservationChecker::new();
        feed(
            &mut c,
            &[
                batch_committed(0, 0),
                virtual_ack(0, 0, true),
                virtual_ack(1, 0, false), // read: acked without a commit trace
            ],
        );
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }

    #[test]
    fn broker_conservation_flags_duplicate_acks_and_commits() {
        let mut c = BrokerConservationChecker::new();
        feed(&mut c, &[batch_committed(0, 0), virtual_ack(0, 0, true), virtual_ack(0, 0, true)]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("acked twice"));

        let mut c = BrokerConservationChecker::new();
        feed(&mut c, &[batch_committed(0, 0), batch_committed(0, 0), virtual_ack(0, 0, true)]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("committed twice"));
    }

    #[test]
    fn broker_conservation_flags_phantom_write_acks_only_with_batch_material() {
        // A write acked with no commit trace, on a stream that has batch
        // commits: phantom.
        let mut c = BrokerConservationChecker::new();
        feed(&mut c, &[batch_committed(0, 0), virtual_ack(1, 3, true)]);
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].details.contains("phantom ack"));

        // The same ack on a stream with no BatchOpCommitted at all (direct
        // path): not judged.
        let mut c = BrokerConservationChecker::new();
        feed(&mut c, &[virtual_ack(1, 3, true)]);
        assert!(c.violations().is_empty());

        // Real (non-virtual) client acks are never judged.
        let mut c = BrokerConservationChecker::new();
        let real = Output::TxCompleted {
            tx: ava_types::TxId { client: ava_types::ClientId(3), seq: 1 },
            client: ava_types::ClientId(3),
            cluster: ClusterId(0),
            issued_at: Time::from_millis(10),
            completed_at: Time::from_millis(60),
            is_write: true,
        };
        feed(&mut c, &[batch_committed(0, 0), real]);
        assert!(c.violations().is_empty());
    }
}
