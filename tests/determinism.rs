//! Determinism golden tests.
//!
//! A fixed-seed two-cluster scenario must produce a byte-identical `Output` stream
//! and identical `NetStats` on every run — and, crucially, across refactors: the
//! PR 2 zero-copy work and the PR 3 scenario-API redesign held the PR 2 captures
//! byte-identical, proving those changes behavior-preserving. The constants below
//! were re-captured at PR 6, whose deterministic round partition (height-anchored
//! packing + committed `RoundCut` markers, DESIGN.md §7) intentionally changes
//! every run's block-to-round assignment.
//!
//! If a change *intentionally* alters scheduling (new message kinds, different
//! timers), re-capture the constants by running
//! `cargo test --test determinism -- --nocapture` and copying the printed values —
//! and say so in the PR.

use hamava_repro::crypto::sha256::Sha256;
use hamava_repro::hamava::harness::DeploymentOptions;
use hamava_repro::scenario::{Protocol, Scenario};
use hamava_repro::simnet::{CostModel, LatencyModel, NetStats};
use hamava_repro::types::{Duration, Output, Region, SystemConfig};
use hamava_repro::workload::WorkloadSpec;

/// Fingerprint of the AVA-HOTSTUFF golden run. Captured at PR 2 (pre-refactor),
/// held byte-identical through PR 3/PR 5, re-captured at PR 6: the
/// deterministic round partition (height-anchored packing + committed
/// `RoundCut` markers, DESIGN.md §7) intentionally changes every run's
/// block-to-round assignment and message stream.
const HOTSTUFF_GOLDEN: &str = "03fb3aa5d5caa1dc0f9313c95d4e8c1de8918778462ddec0db3b6857d3cde693";

/// Fingerprint of the AVA-BFTSMART golden run, captured at PR 2 and re-captured
/// at PR 6 (same reason as [`HOTSTUFF_GOLDEN`]).
const BFTSMART_GOLDEN: &str = "a14686b45e2ffc921bb637979f9abb7cc20199aec15222a87d23447ca63e9e11";

fn golden_opts() -> DeploymentOptions {
    DeploymentOptions {
        seed: 2024,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 32,
        store: None,
        state_machine: hamava_repro::hamava::StateMachineKind::Counter,
    }
}

fn golden_config() -> SystemConfig {
    let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
    config.params.batch_size = 20;
    config
}

fn fingerprint(outputs: &[Output], stats: &NetStats) -> String {
    let mut h = Sha256::new();
    for o in outputs {
        h.update(format!("{o:?}\n").as_bytes());
    }
    h.update(
        format!(
            "local={} global={} bytes={} dropped={} events={}\n",
            stats.local_messages,
            stats.global_messages,
            stats.bytes_sent,
            stats.dropped_messages,
            stats.events_processed
        )
        .as_bytes(),
    );
    let mut pairs: Vec<_> = stats.per_group_pair.iter().collect();
    pairs.sort();
    for ((from, to), count) in pairs {
        h.update(format!("{from}->{to}={count}\n").as_bytes());
    }
    h.finalize().iter().map(|b| format!("{b:02x}")).collect()
}

fn run_protocol(protocol: Protocol) -> String {
    let run = Scenario::builder(protocol, golden_config())
        .options(golden_opts())
        .run_for(Duration::from_secs(8))
        .build()
        .run();
    fingerprint(&run.outputs, &run.stats)
}

#[test]
fn hotstuff_golden_fingerprint_is_stable() {
    let fp = run_protocol(Protocol::AvaHotStuff);
    println!("hotstuff fingerprint: {fp}");
    assert_eq!(fp, HOTSTUFF_GOLDEN, "AVA-HOTSTUFF golden run diverged from PR 2 capture");
}

#[test]
fn bftsmart_golden_fingerprint_is_stable() {
    let fp = run_protocol(Protocol::AvaBftSmart);
    println!("bftsmart fingerprint: {fp}");
    assert_eq!(fp, BFTSMART_GOLDEN, "AVA-BFTSMART golden run diverged from PR 2 capture");
}

#[test]
fn fingerprint_is_reproducible_within_a_process() {
    assert_eq!(run_protocol(Protocol::AvaHotStuff), run_protocol(Protocol::AvaHotStuff));
}

/// Fingerprint of the crash → restart → catch-up golden run (store enabled,
/// checkpoint every 4 rounds), captured at PR 5 and re-captured at PR 6 (same
/// reason as [`HOTSTUFF_GOLDEN`]; this one additionally picks up the
/// checkpoint-committed packing anchor).
const RECOVERY_GOLDEN: &str = "eb2ec0151f32967e5010031bee610ccc548dc0dce57adede28c3028e9d3fad60";

fn run_recovery_golden() -> String {
    let run = Scenario::builder(Protocol::AvaHotStuff, golden_config())
        .options(golden_opts())
        .store(hamava_repro::store::StoreConfig::every(4))
        .run_for(Duration::from_secs(8))
        .crash_at(hamava_repro::types::Time::from_secs(2), hamava_repro::types::ReplicaId(1))
        .restart_at(hamava_repro::types::Time::from_secs(4), hamava_repro::types::ReplicaId(1))
        .build()
        .run();
    assert!(
        run.outputs.iter().any(|o| matches!(o, Output::RecoveryCompleted { .. })),
        "the golden run must exercise the catch-up path"
    );
    fingerprint(&run.outputs, &run.stats)
}

#[test]
fn crash_restart_catch_up_golden_fingerprint_is_stable() {
    // A store-enabled crash → restart → catch-up run is as deterministic as a
    // plain run: the store appends, checkpoint digests, restart event and the
    // state-transfer exchange all replay identically under the same seed.
    let fp = run_recovery_golden();
    println!("recovery fingerprint: {fp}");
    assert_eq!(fp, RECOVERY_GOLDEN, "crash→restart→catch-up golden run diverged from PR 5 capture");
}

/// Schedule fingerprint of fuzz seed 42 under the quick profile, captured at
/// PR 6 — pins `ScheduleGenerator`'s drawing order (a reordered draw would
/// silently change what every CI seed number means).
const FUZZ_SCHEDULE_GOLDEN: &str =
    "953c664131862a0f27c8db7d31f765107af92472c35ac341f42d8c5eabb9fdce";

/// Output fingerprint of running fuzz seed 42, captured at PR 6 — pins the
/// whole chain from seed to output stream, the property failing-seed
/// reproducibility rests on.
const FUZZ_OUTPUT_GOLDEN: &str = "ba53fe6b3e7938dd414ede2e950897b9a70f268bf731a01aed2a282312a872a1";

#[test]
fn fuzz_case_golden_fingerprints_are_stable() {
    use hamava_repro::fuzz::{run_case, FuzzConfig, ScheduleGenerator};
    let case = ScheduleGenerator::new(FuzzConfig::quick()).case(42);
    println!("fuzz schedule fingerprint: {}", case.fingerprint());
    let report = run_case(&case);
    println!("fuzz output fingerprint: {}", report.output_digest);
    assert!(report.passed(), "fuzz seed 42 must pass the checkers: {:?}", report.violations);
    assert_eq!(
        case.fingerprint(),
        FUZZ_SCHEDULE_GOLDEN,
        "fuzz schedule generation diverged from the PR 6 capture"
    );
    assert_eq!(
        report.output_digest, FUZZ_OUTPUT_GOLDEN,
        "fuzz seed 42's run diverged from the PR 6 capture"
    );
}

/// Fingerprint of the keyed-KV golden run, captured at PR 10 when the
/// `ava-state` subsystem landed. Same scenario as [`HOTSTUFF_GOLDEN`] but with
/// `StateMachineKind::Kv`: versioned values, per-round `StateDigest` outputs
/// and value-byte execution costs all join the fingerprint, so any drift in
/// the KV machine's apply order, set-hash digest or snapshot-backed costs
/// shows up here even though the counter goldens above cannot see it.
const KV_GOLDEN: &str = "dd389de83775f0de3e95bb3f798af335ed4f89b7f8c7139c9c5a036a7199a3ec";

fn run_kv_golden() -> String {
    let mut opts = golden_opts();
    opts.state_machine = hamava_repro::hamava::StateMachineKind::Kv;
    let run = Scenario::builder(Protocol::AvaHotStuff, golden_config())
        .options(opts)
        .run_for(Duration::from_secs(8))
        .build()
        .run();
    assert!(
        run.outputs.iter().any(|o| matches!(o, Output::StateDigest { .. })),
        "the KV golden run must emit per-round state digests"
    );
    fingerprint(&run.outputs, &run.stats)
}

#[test]
fn kv_state_machine_golden_fingerprint_is_stable() {
    let fp = run_kv_golden();
    println!("kv fingerprint: {fp}");
    assert_eq!(fp, KV_GOLDEN, "keyed-KV golden run diverged from the PR 10 capture");
}

#[test]
fn parallel_executor_matches_serial_byte_for_byte() {
    // The PR 7 parallel-sweep contract: running a list of scenarios on a
    // `RunPool` with 8 workers must produce the same fingerprints, in the same
    // order, as running them one by one on one thread — including against the
    // committed goldens, so cross-thread execution can never silently fork the
    // deterministic schedule. Each scenario owns its whole simulation stack
    // (event queue, RNG, key registry), which is the isolation the pool relies
    // on.
    use hamava_repro::scenario::RunPool;

    let scenarios = |protocols: &[Protocol]| -> Vec<Scenario> {
        protocols
            .iter()
            .map(|&p| {
                Scenario::builder(p, golden_config())
                    .options(golden_opts())
                    .run_for(Duration::from_secs(8))
                    .build()
            })
            .collect()
    };
    let protocols =
        [Protocol::AvaHotStuff, Protocol::AvaBftSmart, Protocol::AvaHotStuff, Protocol::GeoBft];

    let serial: Vec<String> = RunPool::new(1)
        .run_scenarios(scenarios(&protocols))
        .iter()
        .map(|run| fingerprint(&run.outputs, &run.stats))
        .collect();
    let parallel: Vec<String> = RunPool::new(8)
        .run_scenarios(scenarios(&protocols))
        .iter()
        .map(|run| fingerprint(&run.outputs, &run.stats))
        .collect();

    assert_eq!(serial, parallel, "8-worker pool diverged from the serial runs");
    assert_eq!(parallel[0], HOTSTUFF_GOLDEN, "pooled AVA-HOTSTUFF run diverged from the golden");
    assert_eq!(parallel[1], BFTSMART_GOLDEN, "pooled AVA-BFTSMART run diverged from the golden");
    assert_eq!(parallel[0], parallel[2], "same scenario must fingerprint identically in one pool");
}

#[test]
fn honest_corruption_is_byte_identical_to_the_plain_golden() {
    // The PR 9 adversary suite wraps every replica in a `CorruptReplica`
    // decorator; a `Corrupt` event carrying `ByzantineBehavior::Honest` arms the
    // decorator without any deviation. The equivalence contract: such a run must
    // reproduce the plain golden byte for byte — the decorator drains no sends,
    // draws no randomness and charges no costs while honest.
    use hamava_repro::scenario::ByzantineBehavior;
    use hamava_repro::types::{ReplicaId, Time};
    let run = Scenario::builder(Protocol::AvaHotStuff, golden_config())
        .options(golden_opts())
        .run_for(Duration::from_secs(8))
        .corrupt_at(Time::from_secs(2), ReplicaId(1), ByzantineBehavior::Honest)
        .corrupt_at(Time::from_secs(3), ReplicaId(5), ByzantineBehavior::Honest)
        .build()
        .run();
    assert_eq!(
        fingerprint(&run.outputs, &run.stats),
        HOTSTUFF_GOLDEN,
        "a Corrupt(Honest) run must be byte-identical to the plain golden"
    );
}

#[test]
fn observers_and_ticks_do_not_perturb_the_run() {
    // Attaching observers chunks the run into tick-bounded `run_until` segments;
    // scheduling must be bit-identical to the unobserved run.
    struct Counter(usize);
    impl hamava_repro::scenario::RunObserver for Counter {
        fn on_output(&mut self, _output: &Output) {
            self.0 += 1;
        }
    }
    let mut counter = Counter(0);
    let observed = Scenario::builder(Protocol::AvaHotStuff, golden_config())
        .options(golden_opts())
        .run_for(Duration::from_secs(8))
        .tick_every(Duration::from_millis(500))
        .build()
        .run_observed(&mut [&mut counter]);
    let fp = fingerprint(&observed.outputs, &observed.stats);
    assert_eq!(fp, HOTSTUFF_GOLDEN, "tick-chunked run diverged from the golden capture");
    assert_eq!(counter.0, observed.outputs.len(), "observer must see every output exactly once");
}
