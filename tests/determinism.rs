//! Determinism golden tests.
//!
//! A fixed-seed two-cluster scenario must produce a byte-identical `Output` stream
//! and identical `NetStats` on every run — and, crucially, across refactors: the
//! PR 2 zero-copy work and the PR 3 scenario-API redesign must not change
//! scheduling order. The fingerprints below were captured before the PR 2 zero-copy
//! refactor; the scenario runner reproducing them proves the declarative API is
//! behavior-preserving with respect to the hand-driven harness it replaced.
//!
//! If a change *intentionally* alters scheduling (new message kinds, different
//! timers), re-capture the constants by running
//! `cargo test --test determinism -- --nocapture` and copying the printed values —
//! and say so in the PR.

use hamava_repro::crypto::sha256::Sha256;
use hamava_repro::hamava::harness::DeploymentOptions;
use hamava_repro::scenario::{Protocol, Scenario};
use hamava_repro::simnet::{CostModel, LatencyModel, NetStats};
use hamava_repro::types::{Duration, Output, Region, SystemConfig};
use hamava_repro::workload::WorkloadSpec;

/// Fingerprint of the AVA-HOTSTUFF golden run, captured at PR 2 (pre-refactor).
const HOTSTUFF_GOLDEN: &str = "fb9cd95b06fac095ef71a4d998d67eddbe6dff062536027371dc2baead07743b";

/// Fingerprint of the AVA-BFTSMART golden run, captured at PR 2 (pre-refactor).
const BFTSMART_GOLDEN: &str = "1b70236bd5b9ce91090895a8776ab09d99660aa53a7a49f0395de96cb30d14db";

fn golden_opts() -> DeploymentOptions {
    DeploymentOptions {
        seed: 2024,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 32,
        store: None,
    }
}

fn golden_config() -> SystemConfig {
    let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
    config.params.batch_size = 20;
    config
}

fn fingerprint(outputs: &[Output], stats: &NetStats) -> String {
    let mut h = Sha256::new();
    for o in outputs {
        h.update(format!("{o:?}\n").as_bytes());
    }
    h.update(
        format!(
            "local={} global={} bytes={} dropped={} events={}\n",
            stats.local_messages,
            stats.global_messages,
            stats.bytes_sent,
            stats.dropped_messages,
            stats.events_processed
        )
        .as_bytes(),
    );
    let mut pairs: Vec<_> = stats.per_group_pair.iter().collect();
    pairs.sort();
    for ((from, to), count) in pairs {
        h.update(format!("{from}->{to}={count}\n").as_bytes());
    }
    h.finalize().iter().map(|b| format!("{b:02x}")).collect()
}

fn run_protocol(protocol: Protocol) -> String {
    let run = Scenario::builder(protocol, golden_config())
        .options(golden_opts())
        .run_for(Duration::from_secs(8))
        .build()
        .run();
    fingerprint(&run.outputs, &run.stats)
}

#[test]
fn hotstuff_golden_fingerprint_is_stable() {
    let fp = run_protocol(Protocol::AvaHotStuff);
    println!("hotstuff fingerprint: {fp}");
    assert_eq!(fp, HOTSTUFF_GOLDEN, "AVA-HOTSTUFF golden run diverged from PR 2 capture");
}

#[test]
fn bftsmart_golden_fingerprint_is_stable() {
    let fp = run_protocol(Protocol::AvaBftSmart);
    println!("bftsmart fingerprint: {fp}");
    assert_eq!(fp, BFTSMART_GOLDEN, "AVA-BFTSMART golden run diverged from PR 2 capture");
}

#[test]
fn fingerprint_is_reproducible_within_a_process() {
    assert_eq!(run_protocol(Protocol::AvaHotStuff), run_protocol(Protocol::AvaHotStuff));
}

/// Fingerprint of the crash → restart → catch-up golden run (store enabled,
/// checkpoint every 4 rounds), captured at PR 5.
const RECOVERY_GOLDEN: &str = "f116800a392710856247fdaabe7e3b97c8a406d1b40953ab09d9d2c9ce943db0";

fn run_recovery_golden() -> String {
    let run = Scenario::builder(Protocol::AvaHotStuff, golden_config())
        .options(golden_opts())
        .store(hamava_repro::store::StoreConfig::every(4))
        .run_for(Duration::from_secs(8))
        .crash_at(hamava_repro::types::Time::from_secs(2), hamava_repro::types::ReplicaId(1))
        .restart_at(hamava_repro::types::Time::from_secs(4), hamava_repro::types::ReplicaId(1))
        .build()
        .run();
    assert!(
        run.outputs.iter().any(|o| matches!(o, Output::RecoveryCompleted { .. })),
        "the golden run must exercise the catch-up path"
    );
    fingerprint(&run.outputs, &run.stats)
}

#[test]
fn crash_restart_catch_up_golden_fingerprint_is_stable() {
    // A store-enabled crash → restart → catch-up run is as deterministic as a
    // plain run: the store appends, checkpoint digests, restart event and the
    // state-transfer exchange all replay identically under the same seed.
    let fp = run_recovery_golden();
    println!("recovery fingerprint: {fp}");
    assert_eq!(fp, RECOVERY_GOLDEN, "crash→restart→catch-up golden run diverged from PR 5 capture");
}

#[test]
fn observers_and_ticks_do_not_perturb_the_run() {
    // Attaching observers chunks the run into tick-bounded `run_until` segments;
    // scheduling must be bit-identical to the unobserved run.
    struct Counter(usize);
    impl hamava_repro::scenario::RunObserver for Counter {
        fn on_output(&mut self, _output: &Output) {
            self.0 += 1;
        }
    }
    let mut counter = Counter(0);
    let observed = Scenario::builder(Protocol::AvaHotStuff, golden_config())
        .options(golden_opts())
        .run_for(Duration::from_secs(8))
        .tick_every(Duration::from_millis(500))
        .build()
        .run_observed(&mut [&mut counter]);
    let fp = fingerprint(&observed.outputs, &observed.stats);
    assert_eq!(fp, HOTSTUFF_GOLDEN, "tick-chunked run diverged from the golden capture");
    assert_eq!(counter.0, observed.outputs.len(), "observer must see every output exactly once");
}
