//! Crash → restart → catch-up integration tests: the `ava-store` round log +
//! checkpoint subsystem, the `Restart` scenario event, and the `RecoveryObserver`
//! probe working together.

use hamava_repro::scenario::{
    Protocol, RecoveryObserver, Scenario, ScenarioBuilder, ThroughputObserver,
};
use hamava_repro::store::StoreConfig;
use hamava_repro::types::{Duration, Output, Region, SystemConfig, Time};
use hamava_repro::workload::WorkloadSpec;

fn config() -> SystemConfig {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 20;
    config.params.remote_leader_timeout = Duration::from_secs(4);
    config.params.brd_timeout = Duration::from_secs(4);
    config.params.local_timeout = Duration::from_secs(4);
    config
}

/// E4.1-style shape with recovery: crash f non-leader replicas per cluster at 4 s,
/// restart them at `restart_secs`.
fn crash_restart_scenario(restart_secs: u64, run_secs: u64) -> ScenarioBuilder {
    let config = config();
    let crash_at = Time::from_secs(4);
    let restart_at = Time::from_secs(restart_secs);
    let mut builder = Scenario::builder(Protocol::AvaHotStuff, config.clone())
        .seed(11)
        .workload(WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() })
        .store(StoreConfig::every(4))
        .run_for(Duration::from_secs(run_secs));
    for cluster in &config.clusters {
        let f = (cluster.replicas.len() - 1) / 3;
        for (id, _) in cluster.replicas.iter().skip(1).take(f) {
            builder = builder.crash_at(crash_at, *id).restart_at(restart_at, *id);
        }
    }
    builder
}

#[test]
fn restarted_replicas_catch_up_via_checkpoint_and_log_suffix() {
    let mut recovery = RecoveryObserver::new();
    let run = crash_restart_scenario(8, 24).build().run_observed(&mut [&mut recovery]);

    // Four replicas (f=2 per cluster, two clusters) restarted and every one of
    // them completed its catch-up well before the run ended.
    assert_eq!(recovery.traces().len(), 4, "all four crashed replicas must restart");
    assert!(recovery.all_caught_up(), "every restarted replica must catch up: {recovery:?}");
    let ttc = recovery.max_time_to_caught_up().expect("all caught up");
    assert!(ttc < Duration::from_secs(8), "catch-up should finish within seconds, took {ttc}");
    // The crash window spans several rounds, so real state must have moved: a
    // checkpoint and/or log suffix was transferred, not just an empty handshake.
    assert!(recovery.total_rounds_transferred() > 0, "recovery must transfer rounds");
    assert!(recovery.total_bytes_transferred() > 0, "recovery must transfer bytes");
    // The restarted replicas rejoin ordering: they report executed rounds after
    // their catch-up round.
    for (replica, trace) in recovery.traces() {
        let caught_up = trace.caught_up_round.expect("caught up");
        assert!(
            run.outputs.iter().any(|o| matches!(o, Output::RoundExecuted { replica: r, round, .. }
                if r == replica && *round >= caught_up)),
            "{replica} must execute rounds after rejoining at {caught_up}"
        );
    }
}

#[test]
fn throughput_recovers_after_restart() {
    // Acceptance gate for the crash path: with crashed replicas restarted and
    // caught up, end-of-run throughput must recover to ≥ 80% of the pre-crash
    // rate (quick scale).
    let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
    let mut recovery = RecoveryObserver::new();
    crash_restart_scenario(8, 24).build().run_observed(&mut [&mut throughput, &mut recovery]);
    assert!(recovery.all_caught_up());

    let series = throughput.series();
    // Pre-crash rate: the 2–4 s bucket (warm, before the 4 s crash). Post-recovery
    // rate: the best of the last three buckets (recovery ramp).
    let rate_at = |t: f64| {
        series
            .iter()
            .find(|(bucket_end, _)| (*bucket_end - t).abs() < 1e-9)
            .map(|(_, tps)| *tps)
            .unwrap_or(0.0)
    };
    let pre_crash = rate_at(4.0);
    let post_recovery = series.iter().rev().take(3).map(|(_, tps)| *tps).fold(0.0f64, f64::max);
    assert!(pre_crash > 0.0, "pre-crash throughput must be nonzero");
    assert!(
        post_recovery >= 0.8 * pre_crash,
        "post-recovery throughput {post_recovery:.1} must reach 80% of pre-crash {pre_crash:.1}; \
         series: {series:?}"
    );
}

#[test]
fn kv_machine_catch_up_transfers_snapshot_bytes_and_rejoins_with_matching_digest() {
    // PR 10: with the keyed KV machine the checkpoint carries a real state
    // snapshot (keys + versioned values), not just a counter — catch-up must
    // move those bytes, and the recovered replica's post-rejoin state digest
    // must agree with its peers' digest for the same round (the same property
    // the execution-agreement checker enforces globally).
    use hamava_repro::types::{ReplicaId, Round};
    use std::collections::BTreeMap;

    let mut recovery = RecoveryObserver::new();
    let run = crash_restart_scenario(8, 24)
        .state_machine(hamava_repro::hamava::StateMachineKind::Kv)
        .build()
        .run_observed(&mut [&mut recovery]);

    assert_eq!(recovery.traces().len(), 4, "all four crashed replicas must restart");
    assert!(recovery.all_caught_up(), "every restarted replica must catch up: {recovery:?}");

    // The adopted checkpoint carried a populated snapshot: every completed
    // recovery reports nonzero transferred bytes.
    for o in &run.outputs {
        if let Output::RecoveryCompleted { replica, bytes_transferred, .. } = o {
            assert!(
                *bytes_transferred > 0,
                "{replica} recovered without transferring snapshot bytes"
            );
        }
    }
    // And the snapshot was adopted from peers, not taken locally.
    assert!(
        run.outputs.iter().any(|o| matches!(o, Output::CheckpointInstalled { adopted: true, .. })),
        "catch-up must install an adopted peer checkpoint"
    );

    // Index every (replica, round) -> digest report.
    let mut digests: BTreeMap<(ReplicaId, Round), [u8; 32]> = BTreeMap::new();
    let mut entries_seen = 0u64;
    for o in &run.outputs {
        if let Output::StateDigest { replica, round, digest, entries, .. } = o {
            digests.insert((*replica, *round), *digest);
            entries_seen = entries_seen.max(*entries);
        }
    }
    assert!(entries_seen > 0, "the KV run must commit real keys");

    for (&replica, trace) in recovery.traces() {
        let caught_up = trace.caught_up_round.expect("caught up");
        // The recovered replica's latest digest report after rejoining...
        let (&(_, round), own) = digests
            .iter()
            .filter(|((r, round), _)| *r == replica && *round >= caught_up)
            .next_back()
            .unwrap_or_else(|| panic!("{replica} reported no state digest after {caught_up}"));
        // ...must match every peer that reported the same round.
        let peers = digests
            .iter()
            .filter(|((r, rd), _)| *r != replica && *rd == round)
            .map(|(_, d)| d)
            .collect::<Vec<_>>();
        assert!(!peers.is_empty(), "some peer must also report round {round}");
        for peer in peers {
            assert_eq!(
                peer, own,
                "{replica}'s post-recovery digest for {round} diverges from its peers"
            );
        }
    }
}

#[test]
fn storeless_deployments_still_recover_via_synthesized_checkpoints() {
    // Without a store, peers synthesize a current-state checkpoint; the restarted
    // replica adopts it once f+1 digests match (rounds move in lockstep).
    let config = config();
    let mut recovery = RecoveryObserver::new();
    Scenario::builder(Protocol::AvaBftSmart, config)
        .seed(5)
        .workload(WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() })
        .run_for(Duration::from_secs(20))
        .crash_at(Time::from_secs(4), hamava_repro::types::ReplicaId(1))
        .restart_at(Time::from_secs(8), hamava_repro::types::ReplicaId(1))
        .build()
        .run_observed(&mut [&mut recovery]);
    assert_eq!(recovery.traces().len(), 1);
    assert!(recovery.all_caught_up(), "storeless catch-up must still complete: {recovery:?}");
}

#[test]
fn lying_catch_up_peer_is_outvoted_by_digest_agreement() {
    // PR 9 regression: a Byzantine peer serves catch-up requesters a
    // self-consistent lie — a checkpoint rebuilt over tampered state whose
    // digest matches its (tampered) content, so it passes integrity
    // verification. The f+1 distinct-sender digest agreement must outvote it:
    // the restarted replica adopts the honest checkpoint, completes recovery,
    // and records the same-round digest conflict as Byzantine evidence.
    use hamava_repro::scenario::{ByzantineBehavior, ByzantineObserver};
    use hamava_repro::types::{RejectKind, ReplicaId, Time};
    let config = config();
    let mut recovery = RecoveryObserver::new();
    let mut evidence = ByzantineObserver::new();
    let run = Scenario::builder(Protocol::AvaHotStuff, config)
        .seed(11)
        .workload(WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() })
        .store(StoreConfig::every(4))
        .run_for(Duration::from_secs(24))
        .crash_at(Time::from_secs(4), ReplicaId(1))
        // Corrupt a same-cluster peer while the victim is down, so every
        // catch-up reply it serves after the restart is a lie (well within
        // f = 2 for the 7-replica cluster).
        .corrupt_at(Time::from_secs(5), ReplicaId(2), ByzantineBehavior::LyingCatchUp)
        .restart_at(Time::from_secs(8), ReplicaId(1))
        .build()
        .run_observed(&mut [&mut recovery, &mut evidence]);

    // Recovery still completes, from honest peers.
    assert_eq!(recovery.traces().len(), 1);
    assert!(recovery.all_caught_up(), "digest agreement must outvote the liar: {recovery:?}");
    // The lie was told and rejected: the same-round checkpoint-digest conflict
    // among the offers is recorded as catch-up-checkpoint evidence.
    assert!(
        evidence.rejections_of(RejectKind::CatchUpCheckpoint) > 0,
        "the fabricated checkpoint must surface as rejection evidence"
    );
    // And the rejoined replica executes real rounds afterwards — it adopted the
    // honest state, not the fabricated one.
    let caught_up = recovery.traces()[&ReplicaId(1)].caught_up_round.expect("caught up");
    assert!(
        run.outputs.iter().any(|o| matches!(o, Output::RoundExecuted { replica, round, .. }
            if *replica == ReplicaId(1) && *round >= caught_up)),
        "the recovered replica must rejoin ordering after {caught_up}"
    );
}

#[test]
#[should_panic(expected = "no earlier Crash")]
fn restart_without_crash_is_rejected_at_build_time() {
    let _ = Scenario::builder(Protocol::AvaHotStuff, config())
        .run_for(Duration::from_secs(10))
        .restart_at(Time::from_secs(5), hamava_repro::types::ReplicaId(1))
        .build();
}

#[test]
#[should_panic(expected = "no earlier Crash")]
fn restart_before_its_crash_is_rejected_at_build_time() {
    let _ = Scenario::builder(Protocol::AvaHotStuff, config())
        .run_for(Duration::from_secs(10))
        .crash_at(Time::from_secs(6), hamava_repro::types::ReplicaId(1))
        .restart_at(Time::from_secs(4), hamava_repro::types::ReplicaId(1))
        .build();
}
