//! Scenario-API integration tests: schedule-order invariance (property test), the
//! protocol-label regression guard, cross-crate smoke of the new event kinds, and
//! a generator-drawn property: every schedule `ava_fuzz::ScheduleGenerator`
//! produces is valid builder input in any insertion order.

use hamava_repro::fuzz::{FuzzConfig, ScheduleGenerator};
use hamava_repro::hamava::harness::DeploymentOptions;
use hamava_repro::scenario::{Protocol, Scenario, ScenarioBuilder, ScenarioEvent};
use hamava_repro::simnet::{CostModel, LatencyModel};
use hamava_repro::types::{ClusterId, Duration, Output, Region, ReplicaId, SystemConfig, Time};
use hamava_repro::workload::WorkloadSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quick_opts() -> DeploymentOptions {
    DeploymentOptions {
        seed: 77,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 500, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 32,
        store: None,
        state_machine: hamava_repro::hamava::StateMachineKind::Counter,
    }
}

fn small_config() -> SystemConfig {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    config.params.remote_leader_timeout = Duration::from_secs(4);
    config.params.brd_timeout = Duration::from_secs(4);
    config.params.local_timeout = Duration::from_secs(4);
    config
}

/// A fixed `(time, event)` multiset covering every event category: fault,
/// recovery, churn, client management, and network shaping.
fn event_multiset() -> Vec<(Time, ScenarioEvent)> {
    vec![
        (Time::from_secs(3), ScenarioEvent::Crash { replica: ReplicaId(1) }),
        (Time::from_secs(6), ScenarioEvent::Restart { replica: ReplicaId(1) }),
        (Time::from_secs(3), ScenarioEvent::Join { cluster: ClusterId(0), region: Region::UsWest }),
        (Time::from_secs(3), ScenarioEvent::Leave { replica: ReplicaId(6) }),
        (Time::from_secs(5), ScenarioEvent::Partition { a: ClusterId(0), b: ClusterId(1) }),
        (Time::from_secs(7), ScenarioEvent::Heal { a: ClusterId(0), b: ClusterId(1) }),
        (
            Time::from_secs(7),
            ScenarioEvent::ClientJoin {
                cluster: ClusterId(1),
                workload: WorkloadSpec { key_space: 500, ..WorkloadSpec::default() },
            },
        ),
        (
            Time::from_secs(9),
            ScenarioEvent::WorkloadSwitch {
                cluster: ClusterId(0),
                workload: WorkloadSpec { key_space: 500, ..WorkloadSpec::default() }.write_only(),
            },
        ),
        (Time::from_secs(9), ScenarioEvent::LatencyShift { latency: LatencyModel::uniform(100.0) }),
    ]
}

fn run_with_insertion_order(order: &[usize]) -> Vec<Output> {
    let events = event_multiset();
    let mut builder: ScenarioBuilder = Scenario::builder(Protocol::AvaHotStuff, small_config())
        .options(quick_opts())
        .store(hamava_repro::store::StoreConfig::every(4))
        .run_for(Duration::from_secs(12));
    for &i in order {
        let (at, ev) = events[i].clone();
        builder = builder.at(at, ev);
    }
    builder.build().run().outputs
}

fn canonical_outputs() -> &'static [Output] {
    static CANONICAL: std::sync::OnceLock<Vec<Output>> = std::sync::OnceLock::new();
    CANONICAL.get_or_init(|| run_with_insertion_order(&[0, 1, 2, 3, 4, 5, 6, 7, 8]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any permutation of the same `(time, event)` multiset yields an identical
    /// `Output` stream: the schedule is a set, not a program, so how it was
    /// assembled cannot matter.
    #[test]
    fn schedule_permutations_yield_identical_output_streams(shuffle_seed in 1u64..1_000_000) {
        let mut order: Vec<usize> = (0..event_multiset().len()).collect();
        // Fisher–Yates with a per-case seed.
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let permuted = run_with_insertion_order(&order);
        prop_assert_eq!(permuted.len(), canonical_outputs().len());
        prop_assert!(
            permuted == canonical_outputs(),
            "permuted insertion order {:?} diverged from the canonical stream",
            order
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Schedules drawn from the fuzzer's `ScheduleGenerator` are well-formed
    /// builder input in any insertion order: re-inserting the drawn
    /// `(time, event)` multiset shuffled must pass `try_build` validation and
    /// sort to the same canonical schedule the fuzz case itself builds. This
    /// pins the generator's well-formedness contract (fault budgets, healed
    /// partitions, restart-after-crash) against the builder's validator across
    /// every event kind the generator can draw — including `Restart`, which the
    /// hand-written multiset above covers only in one fixed position.
    #[test]
    fn generator_drawn_schedules_survive_builder_permutations(
        case_seed in 0u64..10_000,
        shuffle_seed in 1u64..1_000_000,
    ) {
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        let case = generator.case(case_seed);
        let entries = case.schedule.sorted();
        prop_assume!(!entries.is_empty());
        let mut order: Vec<usize> = (0..entries.len()).collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut builder: ScenarioBuilder = Scenario::builder(case.protocol, case.config.clone())
            .options(case.opts.clone())
            .run_for(case.run);
        for &i in &order {
            let (at, ev) = entries[i].clone();
            builder = builder.at(at, ev);
        }
        let built = builder.try_build();
        prop_assert!(
            built.is_ok(),
            "seed {} order {:?} failed validation: {:?}",
            case_seed,
            order,
            built.err()
        );
        let canonical = format!("{:?}", case.scenario().schedule().sorted());
        prop_assert_eq!(format!("{:?}", built.unwrap().schedule().sorted()), canonical);
    }
}

#[test]
fn the_canonical_scenario_made_progress_through_every_event_kind() {
    // Guard that the permutation property is not vacuously comparing empty runs.
    let outputs = canonical_outputs();
    assert!(outputs.iter().any(|o| matches!(o, Output::TxCompleted { .. })));
    assert!(
        outputs.iter().any(|o| matches!(o, Output::ReconfigApplied { joined: true, .. })),
        "the scheduled join must be applied"
    );
    assert!(
        outputs.iter().any(|o| matches!(o, Output::ReplicaRestarted { replica, .. }
            if *replica == ReplicaId(1))),
        "the scheduled restart must fire"
    );
    assert!(
        outputs.iter().any(|o| matches!(o, Output::RecoveryCompleted { replica, .. }
            if *replica == ReplicaId(1))),
        "the restarted replica must catch up"
    );
}

#[test]
fn protocol_labels_map_to_their_own_deployments() {
    // The e4 harness used to run a BFT-SMaRt deployment for the GeoBFT label; the
    // scenario API makes the label part of the deployment.
    for protocol in Protocol::ALL {
        let dep = protocol.deploy(small_config(), quick_opts());
        assert_eq!(dep.protocol(), protocol);
    }
}

#[test]
fn latency_shift_scenario_runs_end_to_end() {
    // The two scenario shapes impossible before the redesign, smoke-tested from the
    // umbrella crate: a latency shift (here) and a partition+heal (end_to_end.rs).
    let run = Scenario::builder(Protocol::AvaBftSmart, small_config())
        .options(quick_opts())
        .run_for(Duration::from_secs(10))
        .latency_shift_at(Time::from_secs(5), LatencyModel::uniform(219.0))
        .build()
        .run();
    let before = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, .. }
                if completed_at.as_secs_f64() < 5.0)
        })
        .count();
    let after = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, .. }
                if completed_at.as_secs_f64() >= 5.0)
        })
        .count();
    assert!(before > 0 && after > 0, "progress on both sides of the shift");
}
