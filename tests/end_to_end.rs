//! Cross-crate integration tests: full simulated deployments of AVA-HOTSTUFF and
//! AVA-BFTSMART processing transactions across heterogeneous geo-distributed
//! clusters.

use hamava_repro::hamava::harness::{bftsmart_deployment, hotstuff_deployment, DeploymentOptions};
use hamava_repro::simnet::{CostModel, LatencyModel};
use hamava_repro::types::{ClusterId, Duration, Output, Region, StageKind, SystemConfig};
use hamava_repro::workload::WorkloadSpec;

fn quick_opts(seed: u64) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2().with_jitter(0.0),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 2_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 48,
    }
}

fn completed_writes(outputs: &[Output]) -> usize {
    outputs.iter().filter(|o| matches!(o, Output::TxCompleted { is_write: true, .. })).count()
}

#[test]
fn hotstuff_two_heterogeneous_clusters_process_transactions() {
    let mut config =
        SystemConfig::heterogeneous(&[vec![Region::UsWest; 4], vec![Region::Europe; 7]]);
    config.params.batch_size = 25;
    let mut dep = hotstuff_deployment(config, quick_opts(1));
    dep.run_for(Duration::from_secs(15));
    let outputs = dep.outputs();
    let rounds = outputs.iter().filter(|o| matches!(o, Output::RoundExecuted { .. })).count();
    assert!(rounds > 0, "no rounds executed");
    assert!(completed_writes(outputs) > 0, "no writes completed");
    // Reads complete too (served locally) and faster on average than writes.
    let (mut read_lat, mut write_lat) = (Vec::new(), Vec::new());
    for o in outputs {
        if let Output::TxCompleted { issued_at, completed_at, is_write, .. } = o {
            let lat = completed_at.since(*issued_at).as_millis_f64();
            if *is_write {
                write_lat.push(lat);
            } else {
                read_lat.push(lat);
            }
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(!read_lat.is_empty() && !write_lat.is_empty());
    assert!(
        mean(&read_lat) < mean(&write_lat),
        "reads ({:.1} ms) should be faster than writes ({:.1} ms)",
        mean(&read_lat),
        mean(&write_lat)
    );
}

#[test]
fn bftsmart_deployment_also_processes_transactions() {
    let mut config =
        SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::AsiaSouth)]);
    config.params.batch_size = 25;
    let mut dep = bftsmart_deployment(config, quick_opts(2));
    dep.run_for(Duration::from_secs(15));
    assert!(completed_writes(dep.outputs()) > 0);
}

#[test]
fn all_three_stages_are_reported_per_round() {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    let mut dep = hotstuff_deployment(config, quick_opts(3));
    dep.run_for(Duration::from_secs(12));
    for stage in StageKind::ALL {
        assert!(
            dep.outputs()
                .iter()
                .any(|o| matches!(o, Output::StageCompleted { stage: s, .. } if *s == stage)),
            "missing stage report for {stage:?}"
        );
    }
}

#[test]
fn clustering_reduces_inter_cluster_traffic_share() {
    // With clusters, the vast majority of messages must be intra-cluster: that is the
    // point of the protocol (Table I's local vs global complexity).
    let mut config = SystemConfig::even_split_multi_region(
        12,
        3,
        &[Region::UsWest, Region::Europe, Region::AsiaSouth],
    );
    config.params.batch_size = 20;
    let mut dep = hotstuff_deployment(config, quick_opts(4));
    dep.run_for(Duration::from_secs(12));
    let stats = dep.sim.stats();
    assert!(stats.local_messages > 0 && stats.global_messages > 0);
    assert!(
        stats.local_messages > stats.global_messages * 3,
        "local {} vs global {}",
        stats.local_messages,
        stats.global_messages
    );
}

#[test]
fn same_seed_is_deterministic_and_different_seeds_differ() {
    let run = |seed: u64| {
        let mut config =
            SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
        config.params.batch_size = 20;
        let mut dep = hotstuff_deployment(config, quick_opts(seed));
        dep.run_for(Duration::from_secs(8));
        (dep.sim.stats().total_messages(), completed_writes(dep.outputs()))
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0, run(8).0);
}

#[test]
fn non_leader_crashes_within_f_are_tolerated() {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 20;
    let mut dep = hotstuff_deployment(config.clone(), quick_opts(5));
    // Crash f = 2 non-leader replicas in cluster 0 five seconds in.
    for (id, _) in config.clusters[0].replicas.iter().skip(1).take(2) {
        dep.crash_at(*id, hamava_repro::types::Time::from_secs(5));
    }
    dep.run_for(Duration::from_secs(20));
    let before = dep
        .outputs()
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if completed_at.as_secs_f64() < 5.0)
        })
        .count();
    let after = dep
        .outputs()
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if completed_at.as_secs_f64() > 8.0)
        })
        .count();
    assert!(before > 0, "no progress before the crashes");
    assert!(after > 0, "progress must continue with f crashed replicas");
}

#[test]
fn geobft_baseline_and_hotstuff_both_commit_under_identical_workload() {
    let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
    config.params.batch_size = 20;
    let mut geo = hamava_repro::geobft::geobft_deployment(config.clone(), quick_opts(6));
    geo.run_for(Duration::from_secs(10));
    let mut ava = hotstuff_deployment(config, quick_opts(6));
    ava.run_for(Duration::from_secs(10));
    assert!(completed_writes(geo.outputs()) > 0);
    assert!(completed_writes(ava.outputs()) > 0);
}

#[test]
fn membership_is_heterogeneous_and_thresholds_follow_cluster_sizes() {
    let config = SystemConfig::heterogeneous(&[vec![Region::UsWest; 4], vec![Region::Europe; 10]]);
    let m = config.membership();
    assert_eq!(m.f(ClusterId(0)), 1);
    assert_eq!(m.f(ClusterId(1)), 3);
    assert_eq!(m.quorum(ClusterId(1)), 7);
}
