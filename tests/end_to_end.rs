//! Cross-crate integration tests: full simulated deployments of AVA-HOTSTUFF and
//! AVA-BFTSMART processing transactions across heterogeneous geo-distributed
//! clusters, driven through the declarative scenario API.

use hamava_repro::hamava::harness::DeploymentOptions;
use hamava_repro::scenario::{Protocol, Scenario, ScenarioBuilder, ScenarioRun};
use hamava_repro::simnet::{CostModel, LatencyModel};
use hamava_repro::types::{ClusterId, Duration, Output, Region, StageKind, SystemConfig, Time};
use hamava_repro::workload::WorkloadSpec;

fn quick_opts(seed: u64) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2().with_jitter(0.0),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 2_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 48,
        store: None,
        state_machine: hamava_repro::hamava::StateMachineKind::Counter,
    }
}

fn scenario(protocol: Protocol, config: SystemConfig, seed: u64, secs: u64) -> ScenarioBuilder {
    Scenario::builder(protocol, config).options(quick_opts(seed)).run_for(Duration::from_secs(secs))
}

fn completed_writes(outputs: &[Output]) -> usize {
    outputs.iter().filter(|o| matches!(o, Output::TxCompleted { is_write: true, .. })).count()
}

#[test]
fn hotstuff_two_heterogeneous_clusters_process_transactions() {
    let mut config =
        SystemConfig::heterogeneous(&[vec![Region::UsWest; 4], vec![Region::Europe; 7]]);
    config.params.batch_size = 25;
    let run = scenario(Protocol::AvaHotStuff, config, 1, 15).build().run();
    let outputs = &run.outputs;
    let rounds = outputs.iter().filter(|o| matches!(o, Output::RoundExecuted { .. })).count();
    assert!(rounds > 0, "no rounds executed");
    assert!(completed_writes(outputs) > 0, "no writes completed");
    // Reads complete too (served locally) and faster on average than writes.
    let (mut read_lat, mut write_lat) = (Vec::new(), Vec::new());
    for o in outputs {
        if let Output::TxCompleted { issued_at, completed_at, is_write, .. } = o {
            let lat = completed_at.since(*issued_at).as_millis_f64();
            if *is_write {
                write_lat.push(lat);
            } else {
                read_lat.push(lat);
            }
        }
    }
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(!read_lat.is_empty() && !write_lat.is_empty());
    assert!(
        mean(&read_lat) < mean(&write_lat),
        "reads ({:.1} ms) should be faster than writes ({:.1} ms)",
        mean(&read_lat),
        mean(&write_lat)
    );
}

#[test]
fn bftsmart_deployment_also_processes_transactions() {
    let mut config =
        SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::AsiaSouth)]);
    config.params.batch_size = 25;
    let run = scenario(Protocol::AvaBftSmart, config, 2, 15).build().run();
    assert!(completed_writes(&run.outputs) > 0);
}

#[test]
fn all_three_stages_are_reported_per_round() {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    let run = scenario(Protocol::AvaHotStuff, config, 3, 12).build().run();
    for stage in StageKind::ALL {
        assert!(
            run.outputs
                .iter()
                .any(|o| matches!(o, Output::StageCompleted { stage: s, .. } if *s == stage)),
            "missing stage report for {stage:?}"
        );
    }
}

#[test]
fn clustering_reduces_inter_cluster_traffic_share() {
    // With clusters, the vast majority of messages must be intra-cluster: that is the
    // point of the protocol (Table I's local vs global complexity).
    let mut config = SystemConfig::even_split_multi_region(
        12,
        3,
        &[Region::UsWest, Region::Europe, Region::AsiaSouth],
    );
    config.params.batch_size = 20;
    let run = scenario(Protocol::AvaHotStuff, config, 4, 12).build().run();
    assert!(run.stats.local_messages > 0 && run.stats.global_messages > 0);
    assert!(
        run.stats.local_messages > run.stats.global_messages * 3,
        "local {} vs global {}",
        run.stats.local_messages,
        run.stats.global_messages
    );
}

#[test]
fn same_seed_is_deterministic_and_different_seeds_differ() {
    let run = |seed: u64| -> (u64, usize) {
        let mut config =
            SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
        config.params.batch_size = 20;
        let r: ScenarioRun = scenario(Protocol::AvaHotStuff, config, seed, 8).build().run();
        (r.stats.total_messages(), completed_writes(&r.outputs))
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0, run(8).0);
}

#[test]
fn non_leader_crashes_within_f_are_tolerated() {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 20;
    // Crash f = 2 non-leader replicas in cluster 0 five seconds in.
    let mut builder = scenario(Protocol::AvaHotStuff, config.clone(), 5, 20);
    for (id, _) in config.clusters[0].replicas.iter().skip(1).take(2) {
        builder = builder.crash_at(Time::from_secs(5), *id);
    }
    let run = builder.build().run();
    let before = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if completed_at.as_secs_f64() < 5.0)
        })
        .count();
    let after = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if completed_at.as_secs_f64() > 8.0)
        })
        .count();
    assert!(before > 0, "no progress before the crashes");
    assert!(after > 0, "progress must continue with f crashed replicas");
}

#[test]
fn geobft_baseline_and_hotstuff_both_commit_under_identical_workload() {
    let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
    config.params.batch_size = 20;
    let geo = scenario(Protocol::GeoBft, config.clone(), 6, 10).build().run();
    let ava = scenario(Protocol::AvaHotStuff, config, 6, 10).build().run();
    assert!(completed_writes(&geo.outputs) > 0);
    assert!(completed_writes(&ava.outputs) > 0);
}

#[test]
fn a_partition_blocks_inter_cluster_progress_until_healed() {
    // New scenario shape: an inter-region partition in the middle third of the run.
    // Writes need both clusters, so write completions stall while the clusters are
    // severed and resume after the heal.
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    config.params.remote_leader_timeout = Duration::from_secs(4);
    config.params.brd_timeout = Duration::from_secs(4);
    config.params.local_timeout = Duration::from_secs(4);
    let run = scenario(Protocol::AvaHotStuff, config, 7, 24)
        .partition_at(Time::from_secs(8), ClusterId(0), ClusterId(1))
        .heal_at(Time::from_secs(16), ClusterId(0), ClusterId(1))
        .build()
        .run();
    assert!(run.stats.dropped_messages > 0, "the partition must drop traffic");
    let after_heal = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if completed_at.as_secs_f64() > 17.0)
        })
        .count();
    assert!(after_heal > 0, "writes must resume after the heal");
}

#[test]
fn membership_is_heterogeneous_and_thresholds_follow_cluster_sizes() {
    let config = SystemConfig::heterogeneous(&[vec![Region::UsWest; 4], vec![Region::Europe; 10]]);
    let m = config.membership();
    assert_eq!(m.f(ClusterId(0)), 1);
    assert_eq!(m.f(ClusterId(1)), 3);
    assert_eq!(m.quorum(ClusterId(1)), 7);
}
