//! Fuzz-harness integration: the canary suite must prove every invariant
//! checker can fire on a real recorded run, fuzz cases must reproduce
//! byte-for-byte from their seed alone, and a short seed sweep must pass the
//! always-on checkers end to end.

use hamava_repro::fuzz::{
    canary_suite, fuzz_many, run_case, Canary, FuzzConfig, ScheduleGenerator,
};

#[test]
fn every_canary_is_detected_on_the_recorded_fixture() {
    let (clean, results) = canary_suite();
    assert!(clean.is_empty(), "the clean fixture run must pass every checker: {clean:?}");
    assert_eq!(results.len(), Canary::ALL.len());
    for result in &results {
        assert!(result.injected, "{:?} found no material to corrupt", result.canary);
        assert!(
            result.detected(),
            "{:?} escaped its checker {} (fired instead: {:?})",
            result.canary,
            result.canary.expected_checker(),
            result.detected_by
        );
    }
}

#[test]
fn fuzz_cases_reproduce_byte_for_byte_from_the_seed() {
    // The reproducibility contract behind "paste the failing seed from the CI
    // log": generating and running the same seed twice must agree on both the
    // schedule digest and the full output-stream digest.
    let generator = ScheduleGenerator::new(FuzzConfig::quick());
    let first = run_case(&generator.case(7));
    let again = run_case(&generator.case(7));
    assert_eq!(first.schedule_digest, again.schedule_digest);
    assert_eq!(first.output_digest, again.output_digest);
}

#[test]
fn a_short_seed_sweep_passes_every_checker() {
    let summary = fuzz_many(FuzzConfig::quick(), 0, 5, 2, |_| {});
    assert!(
        summary.all_passed(),
        "failing seeds: {:?}\n{}",
        summary.failing_seeds(),
        summary.to_json("quick")
    );
}

#[test]
fn broker_tier_cases_pass_every_checker_including_conservation() {
    // Force a broker tier onto every case: fault schedules (crashes, restarts,
    // partitions, churn) now run with aggregate virtual-client load through
    // brokers, and the broker-conservation checker judges the committed traces.
    let cfg = FuzzConfig { broker_probability: 1.0, ..FuzzConfig::quick() };
    let summary = fuzz_many(cfg, 0, 3, 2, |_| {});
    assert!(
        summary.all_passed(),
        "failing seeds: {:?}\n{}",
        summary.failing_seeds(),
        summary.to_json("quick")
    );
}

#[test]
fn parallel_fuzz_campaign_matches_serial_digests() {
    // The fan-out contract: a campaign on 4 workers must produce the same
    // reports — same seed order, same schedule and output digests — as the
    // serial campaign, because each case owns its entire simulation stack.
    let serial = fuzz_many(FuzzConfig::quick(), 0, 4, 1, |_| {});
    let parallel = fuzz_many(FuzzConfig::quick(), 0, 4, 4, |_| {});
    assert_eq!(serial.reports.len(), parallel.reports.len());
    for (s, p) in serial.reports.iter().zip(&parallel.reports) {
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.schedule_digest, p.schedule_digest);
        assert_eq!(s.output_digest, p.output_digest);
    }
}
