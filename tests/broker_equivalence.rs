//! Broker-path vs direct-path equivalence.
//!
//! The broker tier must be a *transport* for virtual-client operations, not a
//! semantic change: at low load with batch size 1, routing the aggregate
//! arrival stream through brokers must ack exactly the same transaction
//! multiset as submitting it directly at replicas, on the same seed. The
//! arrival stream owns its RNG (`ava_workload::AggregateStream`), so the
//! issued sequence is identical across both paths by construction — what this
//! test pins is that nothing along the broker path (batching, certification,
//! admission, TOB dedup, ack demultiplexing) loses, duplicates or invents an
//! operation.

use hamava_repro::broker::BrokerTier;
use hamava_repro::scenario::{Protocol, Scenario};
use hamava_repro::types::{Duration, Output, Region, SystemConfig, TxId};
use hamava_repro::workload::AggregateLoad;

fn config() -> SystemConfig {
    let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
    config.params.batch_size = 20;
    config
}

fn tier(brokers_per_cluster: usize) -> BrokerTier {
    BrokerTier {
        brokers_per_cluster,
        // Batch size 1: every operation travels as its own certified batch, so
        // the only difference from the direct path is the broker hop itself.
        max_batch_ops: 1,
        load: AggregateLoad {
            virtual_clients: 5_000,
            offered_tps: 400,
            issue_for: Duration::from_secs(4),
            ..AggregateLoad::default()
        },
        ..BrokerTier::default()
    }
}

/// Sorted multiset of acked virtual-client transactions (reads and writes).
fn acked(brokers_per_cluster: usize, seed: u64) -> Vec<(TxId, bool)> {
    let run = Scenario::builder(Protocol::AvaHotStuff, config())
        .seed(seed)
        .run_for(Duration::from_secs(12))
        .brokers(tier(brokers_per_cluster))
        .build()
        .run();
    let mut acks: Vec<(TxId, bool)> = run
        .outputs
        .iter()
        .filter_map(|o| match o {
            Output::TxCompleted { tx, client, is_write, .. }
                if hamava_repro::workload::is_virtual_client(*client) =>
            {
                Some((*tx, *is_write))
            }
            _ => None,
        })
        .collect();
    acks.sort();
    acks
}

#[test]
fn batch_size_one_broker_path_acks_the_same_multiset_as_the_direct_path() {
    let direct = acked(0, 77);
    let brokered = acked(1, 77);
    // ~400 tps for 4 s across two clusters: both paths must ack the bulk of
    // ~3 200 issued operations, and exactly the same ones.
    assert!(direct.len() > 2_500, "direct path acked only {}", direct.len());
    assert_eq!(direct, brokered, "broker path must ack exactly the direct path's multiset");
    // No duplicates in either (a multiset equality alone would tolerate
    // matching duplicates on both sides).
    let mut dedup = direct.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), direct.len(), "duplicate acks");
}

#[test]
fn the_acked_multiset_is_seed_deterministic() {
    assert_eq!(acked(1, 9), acked(1, 9));
    assert_ne!(acked(1, 9), acked(1, 10));
}
