//! Integration tests of the reconfiguration path: joins, leaves, and the Byzantine
//! remote-leader-change scenario, exercised end to end through declarative
//! scenarios.

use hamava_repro::hamava::harness::DeploymentOptions;
use hamava_repro::scenario::{Protocol, Scenario, ScenarioBuilder};
use hamava_repro::simnet::{CostModel, LatencyModel};
use hamava_repro::types::{ClusterId, Duration, Output, Region, SystemConfig, Time};
use hamava_repro::workload::WorkloadSpec;

fn quick_opts(seed: u64) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2().with_jitter(0.0),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 48,
        store: None,
        state_machine: hamava_repro::hamava::StateMachineKind::Counter,
    }
}

fn scenario(protocol: Protocol, config: SystemConfig, seed: u64, secs: u64) -> ScenarioBuilder {
    Scenario::builder(protocol, config).options(quick_opts(seed)).run_for(Duration::from_secs(secs))
}

#[test]
fn a_replica_can_join_a_running_cluster() {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    let run = scenario(Protocol::AvaHotStuff, config, 11, 25)
        .join_at(Time::from_secs(5), ClusterId(0), Region::UsWest)
        .build()
        .run();
    let new_replica = run.joined[0];
    let joined = run.outputs.iter().any(|o| {
        matches!(o, Output::ReconfigApplied { replica, joined: true, cluster, .. }
            if *replica == new_replica && *cluster == ClusterId(0))
    });
    assert!(joined, "the joining replica was never added to the configuration");
    // Processing continues after the join.
    let late_commits = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, .. }
            if completed_at.as_secs_f64() > 15.0)
        })
        .count();
    assert!(late_commits > 0, "transaction processing stalled after the join");
}

#[test]
fn a_replica_can_leave_a_running_cluster() {
    let mut config = SystemConfig::homogeneous_regions(&[(5, Region::UsWest), (5, Region::Europe)]);
    config.params.batch_size = 20;
    let leaver = config.clusters[0].replicas[3].0;
    let run = scenario(Protocol::AvaBftSmart, config, 12, 25)
        .leave_at(Time::from_secs(5), leaver)
        .build()
        .run();
    let left = run.outputs.iter().any(|o| {
        matches!(o, Output::ReconfigApplied { replica, joined: false, .. } if *replica == leaver)
    });
    assert!(left, "the leave request was never applied");
    let late_commits = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, .. }
            if completed_at.as_secs_f64() > 15.0)
        })
        .count();
    assert!(late_commits > 0, "transaction processing stalled after the leave");
}

#[test]
fn byzantine_leader_withholding_inter_messages_is_replaced() {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    // Short timeouts keep the test fast (the paper uses 20 s in E4.3).
    config.params.remote_leader_timeout = Duration::from_secs(4);
    config.params.brd_timeout = Duration::from_secs(4);
    config.params.local_timeout = Duration::from_secs(4);
    let byzantine = config.initial_leader(ClusterId(0));
    let run = scenario(Protocol::AvaHotStuff, config, 13, 35)
        .mute_inter_cluster_at(Time::from_secs(5), byzantine)
        .build()
        .run();
    // Cluster 0 must have moved to a different leader.
    let changed = run.outputs.iter().any(|o| {
        matches!(o, Output::LeaderChanged { cluster, new_leader, .. }
            if *cluster == ClusterId(0) && *new_leader != byzantine)
    });
    assert!(changed, "remote leader change never replaced the Byzantine leader");
    // And throughput recovers afterwards.
    let recovery_commits = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if *completed_at > Time::from_secs(20))
        })
        .count();
    assert!(recovery_commits > 0, "no transactions committed after the leader change");
}

#[test]
fn crashed_local_leader_is_replaced_by_election() {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    config.params.remote_leader_timeout = Duration::from_secs(4);
    config.params.brd_timeout = Duration::from_secs(4);
    config.params.local_timeout = Duration::from_secs(4);
    let leader = config.initial_leader(ClusterId(1));
    let run = scenario(Protocol::AvaBftSmart, config, 14, 35)
        .crash_initial_leader_at(Time::from_secs(5), ClusterId(1))
        .build()
        .run();
    let changed = run.outputs.iter().any(|o| {
        matches!(o, Output::LeaderChanged { cluster, new_leader, .. }
            if *cluster == ClusterId(1) && *new_leader != leader)
    });
    assert!(changed, "cluster 1 never elected a replacement leader");
    let recovery_commits = run
        .outputs
        .iter()
        .filter(|o| {
            matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
            if *completed_at > Time::from_secs(25))
        })
        .count();
    assert!(recovery_commits > 0, "no transactions committed after the leader crash");
}
